"""Fault tolerance of the build engine: keep-going cone skipping,
retries with backoff, deadline kills, pool degradation, cache
corruption recovery, and fsck — every path driven deterministically by
the fault-injection harness (``repro.pipeline.faultinject``)."""

import marshal
import os

import pytest

from repro.pipeline import (
    ArtifactCache,
    BuildError,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultPolicy,
    build_dir,
    fsck_cache,
)
from repro.pipeline import faultinject, faults
from repro.api import BuildOptions
from repro.pipeline.cache import (
    CODE_KIND,
    GENEXT_KIND,
    IFACE_KIND,
    QUARANTINE_DIRNAME,
)

# A 3-wave / 9-module grid: three independent chains A_i -> B_i -> C_i,
# so one chain's failure cone never touches the other two.
GRID = {}
for i in range(3):
    GRID["A%d" % i] = "module A%d where\n\nfA%d n = n + 1\n" % (i, i)
    GRID["B%d" % i] = (
        "module B%d where\nimport A%d\n\nfB%d n = fA%d (n + 1)\n"
        % (i, i, i, i)
    )
    GRID["C%d" % i] = (
        "module C%d where\nimport B%d\n\nfC%d n = fB%d (n + 1)\n"
        % (i, i, i, i)
    )

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"
MAIN = "module Main where\nimport Power\n\ncube y = power 3 y\n"


@pytest.fixture(autouse=True)
def _disarm_fault_plans():
    """No plan leaks into (or out of) any test."""
    FaultPlan.uninstall()
    yield
    FaultPlan.uninstall()


def _write_grid(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    for name, text in GRID.items():
        (src / (name + ".mod")).write_text(text)
    return str(src)


def _install(tmp_path, *planned):
    plan = FaultPlan(faults=tuple(planned), state_dir=str(tmp_path / "fstate"))
    plan.install(str(tmp_path / "plan.json"))
    return plan


# ---------------------------------------------------------------------------
# Keep-going and fail-fast.
# ---------------------------------------------------------------------------


def test_keep_going_builds_everything_outside_the_cone(tmp_path):
    src = _write_grid(tmp_path)
    cache_dir = str(tmp_path / "cache")
    _install(tmp_path, Fault(module="B1", action="raise", times=99))

    result = build_dir(src, BuildOptions(cache_dir=cache_dir, policy=FaultPolicy(keep_going=True)))
    report = result.report
    assert [f.module for f in report.failures] == ["B1"]
    failure = report.failures[0]
    assert failure.kind == "error"
    assert failure.error_class == "FaultInjected"
    assert failure.root_cause == "B1"
    assert report.skipped == {"C1": "B1"}
    assert sorted(report.succeeded) == ["A0", "A1", "A2", "B0", "B2", "C0", "C2"]
    assert report.exit_code == faults.EXIT_ERROR
    assert not report.ok
    assert "B1" in report.render() and "C1" in report.render()

    # The partial result is import-closed and linkable.
    names = {m.name for m in result.genexts}
    assert names == set(report.succeeded)
    result.link()

    # The cache was never poisoned: a clean rebuild re-analyses exactly
    # the failed cone and serves everything else from cache.
    FaultPlan.uninstall()
    clean = build_dir(src, BuildOptions(cache_dir=cache_dir))
    assert sorted(clean.analysed) == ["B1", "C1"]
    assert sorted(clean.cached) == ["A0", "A1", "A2", "B0", "B2", "C0", "C2"]
    assert clean.report.ok


def test_fail_fast_raises_build_error_naming_the_cone(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="raise", times=99))
    with pytest.raises(BuildError) as excinfo:
        build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache")))
    report = excinfo.value.report
    assert [f.module for f in report.failures] == ["B1"]
    assert report.skipped == {"C1": "B1"}
    assert "B1" in str(excinfo.value)


def test_unparseable_module_fails_only_its_cone(tmp_path):
    """A file that does not even parse fails at scan time — before any
    worker runs — yet keep-going still treats it like any other failed
    module: its importers are skipped, everything else builds."""
    src = _write_grid(tmp_path)
    with open(os.path.join(src, "B1.mod"), "w") as f:
        f.write("module B1 where\nimport A1\n\nfB1 n = @@@\n")

    result = build_dir(
        src,
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            policy=FaultPolicy(keep_going=True),
        ),
    )
    report = result.report
    assert [f.module for f in report.failures] == ["B1"]
    failure = report.failures[0]
    assert failure.kind == "error"
    assert failure.error_class == "ParseError"
    assert failure.span == (4, 9)
    assert report.skipped == {"C1": "B1"}
    assert sorted(report.succeeded) == ["A0", "A1", "A2", "B0", "B2", "C0", "C2"]
    result.link()


def test_unparseable_module_fails_fast_with_a_report(tmp_path):
    src = _write_grid(tmp_path)
    with open(os.path.join(src, "B1.mod"), "w") as f:
        f.write("module B1 where\nimport A1\n\nfB1 n = @@@\n")
    with pytest.raises(BuildError) as excinfo:
        build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache")))
    report = excinfo.value.report
    assert [f.module for f in report.failures] == ["B1"]
    assert report.failures[0].error_class == "ParseError"
    assert report.skipped == {"C1": "B1"}
    assert report.succeeded == []  # scan failure: nothing was attempted


def test_misnamed_module_file_is_a_structured_failure(tmp_path):
    src = _write_grid(tmp_path)
    with open(os.path.join(src, "B1.mod"), "w") as f:
        f.write("module NotB1 where\n\nf n = n\n")
    result = build_dir(
        src,
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            policy=FaultPolicy(keep_going=True),
        ),
    )
    [failure] = result.report.failures
    assert failure.module == "B1"  # the name the file name implies
    assert failure.error_class == "ValidationError"
    assert result.report.skipped == {"C1": "B1"}


def test_two_independent_failures_one_report(tmp_path):
    src = _write_grid(tmp_path)
    _install(
        tmp_path,
        Fault(module="A0", action="raise", times=99),
        Fault(module="B2", action="raise", times=99),
    )
    result = build_dir(
        src,
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            policy=FaultPolicy(keep_going=True),
        ),
    )
    report = result.report
    assert [f.module for f in report.failures] == ["A0", "B2"]
    assert report.skipped == {"B0": "A0", "C0": "A0", "C2": "B2"}
    assert sorted(report.succeeded) == ["A1", "A2", "B1", "C1"]


# ---------------------------------------------------------------------------
# Retries and backoff.
# ---------------------------------------------------------------------------


def test_transient_failure_retried_with_capped_backoff(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="raise", times=2))
    sleeps = []
    policy = FaultPolicy(
        retries=3, backoff_base=0.01, backoff_cap=0.015, sleep=sleeps.append
    )
    result = build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache"), policy=policy))
    assert result.report.ok
    assert sorted(m.name for m in result.genexts) == sorted(GRID)
    assert result.stats.retries == 2
    # Exponential from the base, capped: 0.01, then min(0.015, 0.02).
    assert sleeps == [0.01, 0.015]


def test_retry_budget_exhausted_is_a_failure(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="raise", times=99))
    policy = FaultPolicy(retries=2, keep_going=True, sleep=lambda s: None)
    result = build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache"), policy=policy))
    assert [f.module for f in result.report.failures] == ["B1"]
    assert result.report.failures[0].attempts == 3  # 1 try + 2 retries
    assert result.stats.retries == 2


# ---------------------------------------------------------------------------
# Deadlines: hung jobs are killed and retried.
# ---------------------------------------------------------------------------


def test_pool_hang_killed_at_deadline_and_retried(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="hang", seconds=120.0, times=1))
    policy = FaultPolicy(timeout=2.0, retries=1, sleep=lambda s: None)
    result = build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache"), jobs=2, policy=policy))
    assert result.report.ok
    assert result.stats.timeouts == 1
    assert result.stats.retries == 1
    assert sorted(m.name for m in result.genexts) == sorted(GRID)


def test_serial_hang_killed_by_alarm_deadline(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="hang", seconds=120.0, times=1))
    policy = FaultPolicy(timeout=0.5, retries=1, sleep=lambda s: None)
    result = build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache"), jobs=1, policy=policy))
    assert result.report.ok
    assert result.stats.timeouts == 1


def test_hang_with_no_retries_reports_timeout_exit_code(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="hang", seconds=120.0, times=99))
    policy = FaultPolicy(timeout=0.5, keep_going=True, sleep=lambda s: None)
    result = build_dir(src, BuildOptions(cache_dir=str(tmp_path / "cache"), jobs=1, policy=policy))
    report = result.report
    assert [f.module for f in report.failures] == ["B1"]
    assert report.failures[0].kind == "timeout"
    assert report.exit_code == faults.EXIT_TIMEOUT
    assert report.skipped == {"C1": "B1"}


# ---------------------------------------------------------------------------
# Worker crashes: pool breakage degrades to serial execution.
# ---------------------------------------------------------------------------


def test_worker_crash_degrades_to_serial_and_recovers(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="crash", times=1))
    result = build_dir(
        src,
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            jobs=3,
            policy=FaultPolicy(keep_going=True, sleep=lambda s: None),
        ),
    )
    # The breakage victims were re-run serially; nothing actually failed.
    assert result.report.ok
    assert sorted(m.name for m in result.genexts) == sorted(GRID)
    assert result.stats.crashes == 1
    assert result.stats.degradations == 1
    assert result.report.degraded


def test_persistent_crasher_fails_only_its_own_cone(tmp_path):
    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="crash", times=99))
    result = build_dir(
        src,
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            jobs=3,
            policy=FaultPolicy(keep_going=True, sleep=lambda s: None),
        ),
    )
    # After degradation the crash fires in-process as an exception, so
    # only the true culprit fails; its pool-breakage victims recovered.
    report = result.report
    assert [f.module for f in report.failures] == ["B1"]
    assert report.skipped == {"C1": "B1"}
    assert sorted(report.succeeded) == ["A0", "A1", "A2", "B0", "B2", "C0", "C2"]
    assert result.stats.degradations == 1


# ---------------------------------------------------------------------------
# Corrupt artifacts: detection on read, recovery, and fsck.
# ---------------------------------------------------------------------------


def test_corrupt_artifact_quarantined_by_fsck_and_rebuilt(tmp_path):
    src = _write_grid(tmp_path)
    cache_dir = str(tmp_path / "cache")
    _install(
        tmp_path,
        Fault(module="B1", action="corrupt", phase="publish", kind=IFACE_KIND),
    )
    first = build_dir(src, BuildOptions(cache_dir=cache_dir))
    assert first.report.ok  # the torn write is silent at build time
    key = first.keys["B1"]
    cache = ArtifactCache(cache_dir)
    assert cache.get_bytes(key, IFACE_KIND).startswith(b"\x00")

    FaultPlan.uninstall()
    report = fsck_cache(cache)
    assert not report.ok
    assert report.exit_code == faults.EXIT_CORRUPT
    names = [name for name, _ in report.quarantined]
    assert names == ["%s.%s" % (key, IFACE_KIND)]
    assert "corrupt interface" in report.quarantined[0][1]
    assert not cache.has(key, IFACE_KIND)
    assert os.path.exists(
        os.path.join(cache_dir, QUARANTINE_DIRNAME, names[0])
    )

    # The rebuild redoes exactly the damaged module (per-definition,
    # from its intact defs record); early cutoff keeps its importer
    # cached (the recomputed interface is identical).
    again = build_dir(src, BuildOptions(cache_dir=cache_dir))
    assert again.cached and "B1" not in again.cached
    assert again.analysed + again.incremental == ["B1"]
    assert again.report.ok


def test_corrupt_entry_is_a_miss_even_without_fsck(tmp_path):
    src = _write_grid(tmp_path)
    cache_dir = str(tmp_path / "cache")
    _install(
        tmp_path,
        Fault(module="B1", action="corrupt", phase="publish", kind=IFACE_KIND),
    )
    build_dir(src, BuildOptions(cache_dir=cache_dir))
    FaultPlan.uninstall()
    again = build_dir(src, BuildOptions(cache_dir=cache_dir))
    assert "B1" not in again.cached
    assert again.analysed + again.incremental == ["B1"]


def test_fsck_quarantines_every_damaged_object_kind(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    good_iface_key = "a" * 64
    # A valid interface from a real build, so fsck sees a healthy one.
    src = tmp_path / "src"
    src.mkdir()
    (src / "Power.mod").write_text(POWER)
    real = build_dir(str(src), BuildOptions(cache_dir=cache.root))
    good_iface = cache.get_text(real.keys["Power"], IFACE_KIND)
    cache.put_text(good_iface_key, IFACE_KIND, good_iface)
    cache.put_text("b" * 64, GENEXT_KIND, "x = 1\n")
    cache.put_bytes("c" * 64, CODE_KIND, marshal.dumps(compile("1", "<t>", "eval")))
    # Damaged objects, one per failure mode.
    cache.put_text("d" * 64, IFACE_KIND, '{"torn":')
    cache.put_text("e" * 64, GENEXT_KIND, "def broken(:\n")
    cache.put_bytes("f" * 64, CODE_KIND, b"\x00garbage")
    cache.put_bytes("9" * 64, IFACE_KIND, b"")
    cache.put_text("8" * 64, "mystery.kind", "data")
    # A temp-file dropping and a misfiled object.
    fan_dir = os.path.join(cache.root, "objects", "aa")
    with open(os.path.join(fan_dir, ".tmp.dropping~"), "w") as f:
        f.write("partial")
    misfiled = os.path.join(cache.root, "objects", "00")
    os.makedirs(misfiled)
    with open(os.path.join(misfiled, "7" * 64 + "." + IFACE_KIND), "w") as f:
        f.write(good_iface)
    with open(os.path.join(misfiled, "not-a-key"), "w") as f:
        f.write("junk")

    report = fsck_cache(cache)
    reasons = dict(report.quarantined)
    assert "corrupt interface" in reasons["d" * 64 + "." + IFACE_KIND]
    assert "corrupt genext source" in reasons["e" * 64 + "." + GENEXT_KIND]
    assert "corrupt code object" in reasons["f" * 64 + "." + CODE_KIND]
    assert "empty object" in reasons["9" * 64 + "." + IFACE_KIND]
    assert "unknown artifact kind" in reasons["8" * 64 + ".mystery.kind"]
    assert "misfiled" in reasons["7" * 64 + "." + IFACE_KIND]
    assert "unrecognised object name" in reasons["not-a-key"]
    assert report.removed_tmp == [".tmp.dropping~"]
    # Healthy objects are untouched...
    assert cache.has(good_iface_key, IFACE_KIND)
    assert cache.has("b" * 64, GENEXT_KIND)
    assert cache.has("c" * 64, CODE_KIND)
    # ...and a second pass is clean.
    second = fsck_cache(cache)
    assert second.ok and not second.removed_tmp
    import json

    json.loads(json.dumps(report.as_dict()))


def test_fsck_skips_foreign_interpreter_code_objects(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    cache.put_bytes("a" * 64, "code-otherpython-999.bin", b"opaque")
    report = fsck_cache(cache)
    assert report.ok
    assert report.foreign == ["a" * 64 + ".code-otherpython-999.bin"]


# ---------------------------------------------------------------------------
# The injection harness itself.
# ---------------------------------------------------------------------------


def test_fault_budget_is_spent_exactly_times(tmp_path):
    _install(tmp_path, Fault(module="M", action="raise", times=2))
    with pytest.raises(FaultInjected):
        faultinject.fire("analyse", "M")
    with pytest.raises(FaultInjected):
        faultinject.fire("analyse", "M")
    faultinject.fire("analyse", "M")  # budget exhausted: a no-op
    faultinject.fire("analyse", "Other")  # different module: a no-op
    faultinject.fire("cogen", "M")  # different phase: a no-op


def test_no_plan_means_no_op():
    faultinject.fire("analyse", "Anything")
    assert faultinject.corrupt("publish", "X", IFACE_KIND, b"data") == b"data"


def test_seeded_plans_are_deterministic_and_round_trip(tmp_path):
    first = FaultPlan.seeded(
        7, ["A", "B", "C"], str(tmp_path / "s"), actions=("raise", "hang")
    )
    second = FaultPlan.seeded(
        7, ["C", "B", "A"], str(tmp_path / "s"), actions=("raise", "hang")
    )
    assert first.faults == second.faults
    assert FaultPlan.from_dict(first.as_dict()) == first


def test_unknown_action_rejected():
    with pytest.raises(ValueError):
        Fault(module="M", action="meltdown")


# ---------------------------------------------------------------------------
# BuildResult without a cache (satellite: Optional cache field).
# ---------------------------------------------------------------------------


def test_link_works_without_a_cache(tmp_path):
    import repro
    from repro.genext.engine import specialise
    from repro.pipeline import BuildResult, PipelineStats

    src = tmp_path / "src"
    src.mkdir()
    (src / "Power.mod").write_text(POWER)
    (src / "Main.mod").write_text(MAIN)
    genexts = repro.cogen_program(
        repro.analyse_program(repro.load_program_dir(str(src)))
    )
    result = BuildResult(
        genexts=tuple(genexts),
        keys={},
        waves=(),
        analysed=[],
        cached=[],
        stats=PipelineStats(),
        cache=None,
    )
    gp = result.link()
    assert specialise(gp, "cube", {}).run(3) == 27


# ---------------------------------------------------------------------------
# CLI: exit codes, keep-going output, fsck.
# ---------------------------------------------------------------------------


def test_cli_keep_going_exit_code_and_output(tmp_path, capsys):
    from repro.cli import main

    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="raise", times=99))
    rc = main(["build", src, "--keep-going"])
    assert rc == faults.EXIT_ERROR
    captured = capsys.readouterr()
    assert "FAILED" in captured.out
    assert "skipped (downstream of B1)" in captured.out
    assert "build failed" in captured.err


def test_cli_fail_fast_exit_code(tmp_path, capsys):
    from repro.cli import main

    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="raise", times=99))
    rc = main(["build", src])
    assert rc == faults.EXIT_ERROR
    assert "FAILED" in capsys.readouterr().err


def test_cli_fsck(tmp_path, capsys):
    from repro.cli import main

    src = tmp_path / "src"
    src.mkdir()
    (src / "Power.mod").write_text(POWER)
    assert main(["build", str(src)]) == 0
    assert main(["fsck", str(src)]) == 0
    assert "0 quarantined" in capsys.readouterr().out

    # Corrupt the cached interface behind the cache's back; the build
    # key is recorded in the cache's refs.
    cache = ArtifactCache(str(src / ".mspec-cache"))
    key = cache.read_refs()["Power"]
    with open(cache.path(key, IFACE_KIND), "wb") as f:
        f.write(b"\x00torn write")
    rc = main(["fsck", str(src)])
    assert rc == faults.EXIT_CORRUPT
    assert "quarantined" in capsys.readouterr().out


def test_cli_build_timeout_and_retries_flags(tmp_path, capsys):
    from repro.cli import main

    src = _write_grid(tmp_path)
    _install(tmp_path, Fault(module="B1", action="raise", times=1))
    rc = main(["build", src, "--retries", "2", "--timeout", "30"])
    assert rc == 0
    assert "analysed" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Serve-phase faults and the plan cache.
# ---------------------------------------------------------------------------


def test_plan_rewritten_in_place_is_picked_up(tmp_path):
    import json

    path = str(tmp_path / "plan.json")
    plan_a = FaultPlan(
        faults=(Fault(module="A0", action="raise"),),
        state_dir=str(tmp_path / "fstate"),
    )
    plan_a.install(path)
    first = faultinject.active_plan()
    assert first.faults[0].action == "raise"
    # A second access with an unchanged file hits the cache (identity).
    assert faultinject.active_plan() is first

    # Rewrite the file in place — no re-install, same path, same env
    # var.  The (mtime, size) stamp changes, so the cache must miss.
    plan_b = FaultPlan(
        faults=(
            Fault(
                module="A0", action="hang",
                message="rewritten plan, longer message",
            ),
        ),
        state_dir=str(tmp_path / "fstate"),
    )
    with open(path, "w") as f:
        json.dump(plan_b.as_dict(), f)
    assert faultinject.active_plan().faults[0].action == "hang"


def test_wildcard_module_matches_any_victim(tmp_path):
    plan = _install(
        tmp_path,
        Fault(module="*", phase="serve", action="drop-connection"),
    )
    fault = plan.claim("serve", "anything-at-all", action="drop-connection")
    assert fault is not None and fault.action == "drop-connection"
    # times=1: the budget is spent.
    assert plan.claim("serve", "other", action="drop-connection") is None


def test_claim_exclude_skips_without_spending(tmp_path):
    plan = _install(
        tmp_path,
        Fault(module="power", phase="serve", action="kill-worker"),
    )
    assert plan.claim("serve", "power", exclude=("kill-worker",)) is None
    # The budget survived the excluded pass and is claimable later.
    fault = plan.claim("serve", "power")
    assert fault is not None and fault.action == "kill-worker"


def test_fire_never_spends_transport_actions(tmp_path):
    plan = _install(
        tmp_path,
        Fault(module="*", phase="serve", action="drop-connection"),
        Fault(module="*", phase="serve", action="stall"),
        Fault(module="*", phase="serve", action="corrupt-response"),
    )
    # An implicit in-job firing must not consume transport budgets.
    faultinject.fire("serve", "power")
    for action in faultinject.TRANSPORT_ACTIONS:
        assert (
            faultinject.claim_action("serve", "power", action) is not None
        )


def test_fire_kill_worker_in_parent_skips_and_preserves_budget(tmp_path):
    plan = _install(
        tmp_path,
        Fault(module="*", phase="serve", action="kill-worker"),
    )
    # This process is not a pool worker: fire() must neither kill us
    # nor spend the budget meant for a real worker.
    faultinject.fire("serve", "power")
    assert plan.claim("serve", "power") is not None


def test_action_partition_is_total():
    assert set(faultinject.ACTIONS) == (
        set(faultinject.WORKER_ACTIONS)
        | {"corrupt"}
        | set(faultinject.TRANSPORT_ACTIONS)
    )
