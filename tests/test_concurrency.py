"""Concurrency hammers: the RTCG LRU under threads, the residual
cache under racing processes.

The serve daemon turned both shared structures into genuinely
concurrent ones — request-handler threads probe the process-wide RTCG
LRU, and separate worker *processes* publish into one on-disk
``SpecCache``.  These tests exercise exactly those regimes: no torn
state, no exceptions, invariants (bounded LRU, valid payloads) hold at
every observation point.
"""

import json
import multiprocessing
import threading
import time

import repro
from repro.api import SpecOptions
from repro.backend import rtcg
from repro.speccache import (
    RESID_KIND,
    SpecCache,
    encode_result,
    validate_payload_bytes,
)

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""


# ---------------------------------------------------------------------------
# RTCG LRU: many threads, one bounded cache.
# ---------------------------------------------------------------------------


def test_rtcg_lru_survives_thread_hammer():
    gp = repro.compile_genexts(POWER)
    errors = []
    barrier = threading.Barrier(6)
    stop = threading.Event()

    def worker(seed):
        try:
            barrier.wait(timeout=30)
            for i in range(40):
                n = 1 + (seed + i) % 7  # 7 distinct keys, capacity 4
                fn = rtcg.generate(gp, "power", {"n": n})
                if fn(2) != 2 ** n:
                    errors.append("wrong value for n=%d" % n)
                # The invariant must hold at every observation point,
                # not just at the end: never more entries than the
                # largest capacity the churn thread ever sets.
                if rtcg.lru_len() > 5:
                    errors.append("lru overflow: %d" % rtcg.lru_len())
        except Exception as exc:  # noqa: BLE001 - the hammer reports all
            errors.append(repr(exc))

    def churn():
        try:
            barrier.wait(timeout=30)
            caps = [3, 5, 4]
            i = 0
            while not stop.is_set():
                rtcg.configure_lru(caps[i % len(caps)])
                if i % 4 == 3:
                    rtcg.clear_lru()
                i += 1
                time.sleep(0.001)
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))

    try:
        rtcg.configure_lru(4)
        rtcg.clear_lru()
        threads = [threading.Thread(target=worker, args=(s,)) for s in range(5)]
        churner = threading.Thread(target=churn)
        for t in threads:
            t.start()
        churner.start()
        for t in threads:
            t.join(timeout=120)
        stop.set()
        churner.join(timeout=30)
        assert not errors, errors[:5]
        assert rtcg.lru_len() <= 5
    finally:
        stop.set()
        rtcg.configure_lru(128)
        rtcg.clear_lru()


def test_rtcg_lru_concurrent_same_cold_key_both_correct():
    # Two threads racing the same cold key may both compute; the last
    # insert wins and both callables must be correct (nothing torn).
    gp = repro.compile_genexts(POWER)
    results = []
    barrier = threading.Barrier(4)
    lock = threading.Lock()

    def race():
        barrier.wait(timeout=30)
        fn = rtcg.generate(gp, "power", {"n": 5})
        with lock:
            results.append(fn(3))

    try:
        rtcg.configure_lru(8)
        rtcg.clear_lru()
        threads = [threading.Thread(target=race) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert results == [243, 243, 243, 243]
        assert rtcg.lru_len() == 1
    finally:
        rtcg.configure_lru(128)
        rtcg.clear_lru()


# ---------------------------------------------------------------------------
# SpecCache: racing OS processes, never a torn payload.
# ---------------------------------------------------------------------------


def _hammer_put(root, key, payload, rounds):
    cache = SpecCache(root)
    for _ in range(rounds):
        cache.put(key, payload)


def _payload_bytes(payload):
    """The exact bytes ``SpecCache.put`` publishes for ``payload``."""
    return (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode(
        "utf-8"
    )


def test_speccache_racing_writers_never_torn(tmp_path):
    gp = repro.compile_genexts(POWER)
    # Two *different* valid payloads destined for the same key — the
    # worst case: concurrent os.replace calls with distinct contents.
    payload_a = encode_result(repro.specialise(gp, "power", {"n": 3}))
    payload_b = encode_result(repro.specialise(gp, "power", {"n": 6}))
    assert payload_a != payload_b
    valid = {_payload_bytes(payload_a), _payload_bytes(payload_b)}

    root = str(tmp_path / "cache")
    cache = SpecCache(root)
    key = cache.key(gp.fingerprint(), "power", {"n": 3}, SpecOptions())

    writers = [
        multiprocessing.Process(
            target=_hammer_put, args=(root, key, payload, 150)
        )
        for payload in (payload_a, payload_b)
    ]
    for p in writers:
        p.start()
    try:
        observations = 0
        while any(p.is_alive() for p in writers):
            data = cache.store.get_bytes(key, RESID_KIND)
            if data is not None:
                observations += 1
                # Atomic publication: a reader sees exactly one of the
                # two complete encodings — never a mix, never a prefix.
                assert data in valid, "torn read (%d bytes)" % len(data)
                assert validate_payload_bytes(data) is None
    finally:
        for p in writers:
            p.join(timeout=120)
    assert all(p.exitcode == 0 for p in writers)
    assert observations > 0, "reader never overlapped the writers"

    final = cache.get(key, goal="power")
    assert final in (payload_a, payload_b)


def test_speccache_writer_racing_reader_through_api(tmp_path):
    # Same race observed through the public get(): every non-miss is a
    # fully valid decoded payload.
    gp = repro.compile_genexts(POWER)
    payload = encode_result(repro.specialise(gp, "power", {"n": 4}))

    root = str(tmp_path / "cache")
    cache = SpecCache(root)
    key = cache.key(gp.fingerprint(), "power", {"n": 4}, SpecOptions())

    writer = multiprocessing.Process(
        target=_hammer_put, args=(root, key, payload, 200)
    )
    writer.start()
    try:
        hits = 0
        while writer.is_alive():
            got = cache.get(key, goal="power")
            if got is not None:
                hits += 1
                assert got == payload
    finally:
        writer.join(timeout=120)
    assert writer.exitcode == 0
    assert hits > 0
