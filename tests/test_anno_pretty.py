"""Annotated-program pretty-printer tests (Fig. 2 notation)."""

import pytest

from repro.anno.ast import (
    AApp,
    ACall,
    ACoerce,
    AIf,
    ALam,
    ALit,
    APrim,
    AVar,
    ADef,
    AModule,
    AProgram,
)
from repro.anno.pretty import (
    pretty_adef,
    pretty_aexpr,
    pretty_amodule,
    pretty_aprogram,
)
from repro.bt.bt import D, S, bt_lub, var
from repro.bt.bttypes import BTTBase


def t():
    return var("t")


def test_literals():
    assert pretty_aexpr(ALit(5)) == "5"
    assert pretty_aexpr(ALit(True)) == "true"
    assert pretty_aexpr(ALit(False)) == "false"
    assert pretty_aexpr(ALit(())) == "nil"


def test_variable():
    assert pretty_aexpr(AVar("x")) == "x"


def test_infix_prim_with_binding_time():
    e = APrim("+", t(), (AVar("x"), AVar("y")))
    assert pretty_aexpr(e) == "x +{t} y"


def test_prefix_prim_with_binding_time():
    e = APrim("head", D, (AVar("xs"),))
    assert pretty_aexpr(e) == "head{D} xs"


def test_lub_binding_time_renders_with_bar():
    e = APrim("*", bt_lub(var("t"), var("u")), (AVar("x"), AVar("x")))
    assert pretty_aexpr(e) == "x *{t|u} x"


def test_conditional():
    e = AIf(t(), AVar("c"), ALit(1), ALit(2))
    assert pretty_aexpr(e) == "if{t} c then 1 else 2"


def test_call_with_binding_time_arguments():
    e = ACall("power", (t(), var("u")), (AVar("n"), AVar("x")))
    assert pretty_aexpr(e) == "power {t u} n x"


def test_zero_arg_call():
    e = ACall("c", (), ())
    assert pretty_aexpr(e) == "c {}"


def test_lambda_and_application():
    lam = ALam("x", AVar("x"), "f.lam1")
    e = AApp(S, lam, ALit(1))
    assert pretty_aexpr(e) == "(\\x -> x) @{S} 1"


def test_coercion_brackets():
    e = ACoerce(BTTBase("Nat", S), BTTBase("Nat", t()), ALit(1))
    assert pretty_aexpr(e) == "[Nat^S -> Nat^t]1"


def test_nested_coercion_parenthesises_operand():
    inner = APrim("+", t(), (AVar("x"), AVar("y")))
    e = ACoerce(BTTBase("Nat", t()), BTTBase("Nat", D), inner)
    assert pretty_aexpr(e) == "[Nat^t -> Nat^D](x +{t} y)"


def test_def_header_with_bt_params_and_unfold():
    d = ADef(
        "f",
        ("t",),
        ("x",),
        AVar("x"),
        t(),
        (BTTBase("Nat", t()),),
        BTTBase("Nat", t()),
    )
    assert pretty_adef(d) == "f {t} x =t x"


def test_def_without_params():
    d = ADef("c", (), (), ALit(1), S, (), BTTBase("Nat", S))
    assert pretty_adef(d) == "c =S 1"


def test_module_and_program():
    d = ADef("c", (), (), ALit(1), S, (), BTTBase("Nat", S))
    m = AModule("M", ("A",), (d,))
    text = pretty_amodule(m)
    assert text.startswith("module M where\nimport A\n")
    assert "c =S 1" in text
    assert pretty_aprogram(AProgram((m,))) == text
