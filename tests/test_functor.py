"""Parameterised modules (functors): analysis-once, instantiate-many,
scheme subsumption."""

import pytest

import repro
from repro.bt.analysis import analyse_program
from repro.bt.scheme import BTScheme
from repro.functor import (
    FunctorError,
    default_param_scheme,
    make_functor,
    scheme_subsumes,
)
from repro.genext.cogen import cogen_program
from repro.genext.link import GenextProgram, load_genext
from repro.lang.errors import ValidationError
from repro.lang.parser import parse_module, parse_program
from repro.lang.pretty import pretty_module
from repro.modsys.program import load_program

ORD = """\
module Ord where

leqAsc a b = a <= b
leqDesc a b = b <= a
keyLeq p q = fst p <= fst q
always a b = true
"""

SORT = """\
module Sort(le 2) where

insert x xs = if null xs then x : nil else if le x (head xs) then x : xs else head xs : insert x (tail xs)
isort xs = if null xs then nil else insert (head xs) (isort (tail xs))
"""


@pytest.fixture(scope="module")
def ord_analysis():
    return analyse_program(load_program(ORD))


@pytest.fixture(scope="module")
def sort_template():
    return make_functor(parse_program(SORT).modules[0])


def _link(template, ord_analysis, *instantiations):
    base = [load_genext(m) for m in cogen_program(ord_analysis)]
    loaded = [
        template.instantiate(name, bindings, ord_analysis.schemes)[0]
        for name, bindings in instantiations
    ]
    return GenextProgram(base + loaded)


# -- syntax ---------------------------------------------------------------------


def test_functor_header_parses():
    m = parse_program(SORT).modules[0]
    assert m.is_functor
    assert m.params == (("le", 2),)


def test_functor_header_pretty_roundtrips():
    m = parse_program(SORT).modules[0]
    assert parse_module(pretty_module(m)) == m


def test_multi_parameter_functor_parses():
    m = parse_module("module F(f 1, g 2) where\n\nuse x = g (f x) x\n")
    assert m.params == (("f", 1), ("g", 2))


def test_functors_cannot_be_linked_directly():
    with pytest.raises(ValidationError) as exc:
        load_program(SORT)
    assert "instantiate" in str(exc.value)


# -- analysis -------------------------------------------------------------------


def test_functor_analysed_against_default_signature(sort_template):
    assert set(sort_template.schemes) == {"insert", "isort"}
    assert "le" in sort_template.param_schemes


def test_non_functor_rejected():
    with pytest.raises(FunctorError):
        make_functor(parse_module("module M where\n\nf x = x\n"))


def test_param_arity_mismatch_in_signature():
    with pytest.raises(FunctorError):
        make_functor(
            parse_program(SORT).modules[0],
            param_schemes={"le": default_param_scheme(3)},
        )


# -- subsumption -----------------------------------------------------------------


def test_scheme_subsumes_reflexive(ord_analysis):
    s = ord_analysis.schemes["leqAsc"]
    assert scheme_subsumes(s, s)


def test_simple_comparator_subsumes_default(ord_analysis):
    assert scheme_subsumes(
        ord_analysis.schemes["leqAsc"], default_param_scheme(2)
    )
    assert scheme_subsumes(
        ord_analysis.schemes["always"], default_param_scheme(2)
    )


def test_interior_dependent_comparator_rejected(ord_analysis):
    # keyLeq's result depends on its pairs' components, which the default
    # signature's opaque skeletons cannot express.
    assert not scheme_subsumes(
        ord_analysis.schemes["keyLeq"], default_param_scheme(2)
    )


def test_forced_residual_actual_rejected():
    analysis = analyse_program(
        load_program("module B where\n\nbadle a b = a <= b\n"),
        force_residual={"badle"},
    )
    assert not scheme_subsumes(
        analysis.schemes["badle"], default_param_scheme(2)
    )


def test_arity_mismatch_not_subsumed(ord_analysis):
    assert not scheme_subsumes(
        ord_analysis.schemes["leqAsc"], default_param_scheme(3)
    )


# -- instantiation ----------------------------------------------------------------


def test_two_instantiations_coexist(sort_template, ord_analysis):
    gp = _link(
        sort_template,
        ord_analysis,
        ("Asc", {"le": "leqAsc"}),
        ("Desc", {"le": "leqDesc"}),
    )
    asc = repro.specialise(gp, "asc_isort", {})
    desc = repro.specialise(gp, "desc_isort", {})
    assert asc.run((3, 1, 2)) == (1, 2, 3)
    assert desc.run((3, 1, 2)) == (3, 2, 1)


def test_comparator_is_inlined_per_instantiation(sort_template, ord_analysis):
    gp = _link(sort_template, ord_analysis, ("Asc", {"le": "leqAsc"}))
    result = repro.specialise(gp, "asc_isort", {})
    text = repro.pretty_program(result.program)
    assert "<=" in text  # the comparator unfolded into the residual
    assert "leqAsc" not in text


def test_residuals_are_placed_in_the_instantiation_module(
    sort_template, ord_analysis
):
    gp = _link(sort_template, ord_analysis, ("Asc", {"le": "leqAsc"}))
    result = repro.specialise(gp, "asc_isort", {})
    assert [m.name for m in result.program.modules] == ["Asc"]


def test_unbound_parameter_rejected(sort_template, ord_analysis):
    with pytest.raises(FunctorError) as exc:
        sort_template.instantiate("Asc", {}, ord_analysis.schemes)
    assert "unbound" in str(exc.value)


def test_unsound_actual_rejected_at_instantiation(sort_template, ord_analysis):
    with pytest.raises(FunctorError) as exc:
        sort_template.instantiate("Keyed", {"le": "keyLeq"}, ord_analysis.schemes)
    assert "binding-time signature" in str(exc.value)


def test_wrong_arity_actual_rejected(sort_template):
    analysis = analyse_program(load_program("module B where\n\none a = a\n"))
    with pytest.raises(FunctorError):
        sort_template.instantiate("Bad", {"le": "one"}, analysis.schemes)


def test_custom_signature_admits_structured_comparator(ord_analysis):
    # The paper's vision: the user supplies the binding-time signature.
    # Using keyLeq's own principal scheme as the parameter signature
    # admits keyLeq and specialises sorting over pairs.
    template = make_functor(
        parse_program(SORT).modules[0],
        param_schemes={"le": ord_analysis.schemes["keyLeq"]},
    )
    gp = _link(template, ord_analysis, ("Keyed", {"le": "keyLeq"}))
    result = repro.specialise(gp, "keyed_isort", {})
    out = result.run(
        (("pair", 3, 30), ("pair", 1, 10), ("pair", 2, 20))
    )
    assert out == (("pair", 1, 10), ("pair", 2, 20), ("pair", 3, 30))


def test_template_is_reusable_without_reanalysis(sort_template, ord_analysis):
    # Instantiation does not re-run analysis or cogen: the template's
    # source is fixed; two instantiations give independent namespaces.
    a1, _ = sort_template.instantiate("A1", {"le": "leqAsc"}, ord_analysis.schemes)
    a2, _ = sort_template.instantiate("A2", {"le": "leqAsc"}, ord_analysis.schemes)
    assert a1.namespace is not a2.namespace
    assert set(a1.exports) == {"a1_insert", "a1_isort"}
    assert set(a2.exports) == {"a2_insert", "a2_isort"}


def test_static_input_sorting_computes_away(sort_template, ord_analysis):
    gp = _link(sort_template, ord_analysis, ("Asc", {"le": "leqAsc"}))
    result = repro.specialise(gp, "asc_isort", {"xs": (3, 1, 2)})
    from repro.lang.ast import Prim

    entry = result.program.modules[0].defs[-1]
    # Fully static input: the sorted list is computed at specialisation
    # time (a cons chain of literals).
    assert result.run() == (1, 2, 3)
    assert result.stats["specialisations"] == 0
