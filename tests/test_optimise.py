"""Residual-program optimiser tests: folding, algebra, CSE — all
semantics-preserving (differential-tested against the unoptimised
residual)."""

import pytest

import repro
from repro.interp import run_program
from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var, count_nodes
from repro.lang.parser import parse_expr
from repro.modsys.program import link_program, load_program
from repro.residual.optimise import (
    eliminate_common_subexpressions,
    optimise_program,
    simplify,
)


# -- simplify -------------------------------------------------------------------


def test_constant_folding():
    assert simplify(parse_expr("2 + 3 * 4")) == Lit(14)


def test_folding_through_conditionals():
    assert simplify(parse_expr("if 1 == 1 then 5 else 6")) == Lit(5)
    assert simplify(parse_expr("if 1 == 2 then 5 else 6")) == Lit(6)


def test_unit_laws():
    assert simplify(parse_expr("x * 1")) == Var("x")
    assert simplify(parse_expr("1 * x")) == Var("x")
    assert simplify(parse_expr("x + 0")) == Var("x")
    assert simplify(parse_expr("0 + x")) == Var("x")
    assert simplify(parse_expr("x - 0")) == Var("x")


def test_boolean_laws():
    assert simplify(parse_expr("true && b")) == Var("b")
    assert simplify(parse_expr("b || false")) == Var("b")
    assert simplify(parse_expr("false && b")) == Lit(False)
    assert simplify(parse_expr("true || b")) == Lit(True)


def test_zero_absorber_only_for_total_operands():
    # x * 0 folds when x is a variable (total)...
    assert simplify(parse_expr("x * 0")) == Lit(0)
    # ...but not when the operand can fault.
    e = simplify(parse_expr("head xs * 0"))
    assert e == Prim("*", (Prim("head", (Var("xs"),)), Lit(0)))


def test_faulting_constants_not_folded():
    e = simplify(parse_expr("div 1 0"))
    assert isinstance(e, Prim)  # left in place, still faults at run time


def test_folding_static_list_ops():
    assert simplify(parse_expr("head [7, 8]")) == Lit(7)
    assert simplify(parse_expr("null []")) == Lit(True)


# -- CSE ------------------------------------------------------------------------


def test_cse_binds_repeated_expression():
    e = parse_expr("(x + 1) * (x + 1)")
    out = eliminate_common_subexpressions(e)
    assert isinstance(out, App)  # a let (beta-redex)
    assert out.arg == parse_expr("x + 1")
    body = out.fun.body
    assert body == Prim("*", (Var(out.fun.var), Var(out.fun.var)))


def test_cse_prefers_largest_repeat():
    e = parse_expr("(f x + 1) * (f x + 1)")
    # 'f' must be a call for this to parse; use a prim instead.
    e = parse_expr("(head xs + 1) * (head xs + 1)")
    out = eliminate_common_subexpressions(e)
    assert out.arg == parse_expr("head xs + 1")


def test_cse_respects_conditional_branches():
    # head xs occurs once in each branch: hoisting would evaluate it on
    # the path where the original did not; it must stay put.
    e = parse_expr("if c then head xs else head xs + 1")
    out = eliminate_common_subexpressions(e)
    assert out == e


def test_cse_within_a_branch():
    e = parse_expr("if c then (head xs + head xs) else 0")
    out = eliminate_common_subexpressions(e)
    assert isinstance(out, If)
    assert isinstance(out.then_branch, App)  # let inside the branch


def test_cse_ignores_trivial_expressions():
    e = parse_expr("x + x")
    assert eliminate_common_subexpressions(e) == e


def test_cse_does_not_cross_lambda_boundaries():
    e = parse_expr("(\\y -> head xs + y) @ (head xs)")
    out = eliminate_common_subexpressions(e)
    # One occurrence is under a binder: not shared across it.
    assert isinstance(out, App)


# -- whole programs ---------------------------------------------------------------


FIR = """
module Lists where

take n xs = if n == 0 then nil else if null xs then nil else head xs : take (n - 1) (tail xs)
nth xs n = if n == 0 then head xs else nth (tail xs) (n - 1)

module Fir where
import Lists

dot3 ks xs = head ks * head xs + (nth ks 1 * nth xs 1 + nth ks 2 * nth xs 2)
go ks xs = dot3 ks (take 3 xs)
"""


def test_optimised_fir_shares_the_window():
    from repro.interp import Interpreter

    gp = repro.compile_genexts(FIR)
    result = repro.specialise(gp, "go", {"ks": (1, 2, 1)})
    after = link_program(optimise_program(result.program))
    xs = (1, 2, 3, 4)
    # CSE trades a few AST nodes for evaluation steps: the duplicated
    # take_1 window is now computed once.
    unopt = Interpreter(result.linked)
    unopt.call(result.entry, [xs])
    opt = Interpreter(after)
    assert opt.call(result.entry, [xs]) == result.run(xs)
    assert opt.steps < unopt.steps


def test_optimised_corpus_equivalence(corpus_case, corpus_genexts):
    case = corpus_case
    gp = corpus_genexts[case["name"]]
    result = repro.specialise(gp, case["goal"], case["static"])
    optimised = optimise_program(result.program)
    linked = link_program(optimised)
    for dyn in case["dyn_inputs"]:
        assert run_program(linked, result.entry, list(dyn)) == result.run(*dyn)


def test_optimised_programs_type_check(corpus_case, corpus_genexts):
    from repro.types import infer_program

    case = corpus_case
    gp = corpus_genexts[case["name"]]
    result = repro.specialise(gp, case["goal"], case["static"])
    infer_program(link_program(optimise_program(result.program)))


import hypothesis.strategies as st
from hypothesis import given, settings


@st.composite
def _bool_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(["c", "true", "false", "(a == b)"]))
    left = draw(_nat_exprs(depth=depth + 1))
    right = draw(_nat_exprs(depth=depth + 1))
    form = draw(st.integers(0, 2))
    if form == 0:
        op = draw(st.sampled_from(["==", "<", "<="]))
        return "(%s %s %s)" % (left, op, right)
    if form == 1:
        inner = draw(_bool_exprs(depth=depth + 1))
        return "(not %s)" % inner
    op = draw(st.sampled_from(["&&", "||"]))
    return "(%s %s %s)" % (
        draw(_bool_exprs(depth=depth + 1)),
        op,
        draw(_bool_exprs(depth=depth + 1)),
    )


@st.composite
def _nat_exprs(draw, depth=0):
    """Random well-typed Nat expressions over a, b (Nat) and c (Bool)."""
    if depth >= 4 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", "0", "1", "2", "5"]))
    left = draw(_nat_exprs(depth=depth + 1))
    right = draw(_nat_exprs(depth=depth + 1))
    form = draw(st.integers(0, 3))
    if form == 0:
        op = draw(st.sampled_from(["+", "*", "-"]))
        return "(%s %s %s)" % (left, op, right)
    if form == 1:
        return "(if %s then %s else %s)" % (
            draw(_bool_exprs(depth=depth + 1)),
            left,
            right,
        )
    if form == 2:
        return "(head [%s, %s])" % (left, right)
    return "(fst (pair %s %s))" % (left, right)


_closed_exprs = _nat_exprs


@given(body=_closed_exprs(), a=st.integers(0, 9), b=st.integers(0, 9),
       c=st.booleans())
@settings(max_examples=120, deadline=None)
def test_simplify_preserves_semantics(body, a, b, c):
    source = "module M where\n\nf a b c = %s\n" % body
    linked = load_program(source)
    expected = run_program(linked, "f", [a, b, c])
    d = linked.find_def("f")[1]
    from repro.lang.ast import Def, Module, Program

    optimised = link_program(
        Program((Module("M", (), (Def("f", d.params, simplify(d.body)),)),))
    )
    assert run_program(optimised, "f", [a, b, c]) == expected


@given(body=_closed_exprs(), a=st.integers(0, 9), b=st.integers(0, 9),
       c=st.booleans())
@settings(max_examples=120, deadline=None)
def test_cse_preserves_semantics(body, a, b, c):
    source = "module M where\n\nf a b c = %s\n" % body
    linked = load_program(source)
    expected = run_program(linked, "f", [a, b, c])
    d = linked.find_def("f")[1]
    from repro.lang.ast import Def, Module, Program

    optimised = link_program(
        Program(
            (
                Module(
                    "M",
                    (),
                    (
                        Def(
                            "f",
                            d.params,
                            eliminate_common_subexpressions(d.body),
                        ),
                    ),
                ),
            )
        )
    )
    assert run_program(optimised, "f", [a, b, c]) == expected


def test_optimise_flags():
    gp = repro.compile_genexts(FIR)
    result = repro.specialise(gp, "go", {"ks": (1, 2, 1)})
    no_cse = optimise_program(result.program, cse=False)
    no_fold = optimise_program(result.program, fold=False)
    linked = link_program(no_cse)
    assert run_program(linked, result.entry, [(1, 2, 3)]) == result.run((1, 2, 3))
    linked = link_program(no_fold)
    assert run_program(linked, result.entry, [(1, 2, 3)]) == result.run((1, 2, 3))
