"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


def test_empty_input_gives_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_keywords_are_distinguished_from_identifiers():
    assert kinds("module where import if then else true false nil") == [
        ("kw", "module"),
        ("kw", "where"),
        ("kw", "import"),
        ("kw", "if"),
        ("kw", "then"),
        ("kw", "else"),
        ("kw", "true"),
        ("kw", "false"),
        ("kw", "nil"),
    ]


def test_identifier_flavours():
    assert kinds("power Power x1 x' foo_bar") == [
        ("ident", "power"),
        ("conid", "Power"),
        ("ident", "x1"),
        ("ident", "x'"),
        ("ident", "foo_bar"),
    ]


def test_naturals():
    assert kinds("0 7 42 100") == [
        ("nat", 0),
        ("nat", 7),
        ("nat", 42),
        ("nat", 100),
    ]


def test_multi_character_operators_win_over_prefixes():
    assert kinds("== = <= < -> - || &&") == [
        ("op", "=="),
        ("op", "="),
        ("op", "<="),
        ("op", "<"),
        ("op", "->"),
        ("op", "-"),
        ("op", "||"),
        ("op", "&&"),
    ]


def test_all_delimiters():
    assert kinds("( ) { } [ ] , : @ \\ * +") == [
        ("op", "("),
        ("op", ")"),
        ("op", "{"),
        ("op", "}"),
        ("op", "["),
        ("op", "]"),
        ("op", ","),
        ("op", ":"),
        ("op", "@"),
        ("op", "\\"),
        ("op", "*"),
        ("op", "+"),
    ]


def test_comments_run_to_end_of_line():
    assert kinds("x -- comment with * and ==\ny") == [
        ("ident", "x"),
        ("ident", "y"),
    ]


def test_comment_at_end_of_input():
    assert kinds("x -- trailing") == [("ident", "x")]


def test_positions_track_lines_and_columns():
    tokens = tokenize("ab cd\n  ef")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (1, 4)
    assert (tokens[2].line, tokens[2].column) == (2, 3)


def test_column_one_detection_is_exact():
    tokens = tokenize("x\ny\n  z")
    columns = [(t.value, t.column) for t in tokens[:-1]]
    assert columns == [("x", 1), ("y", 1), ("z", 3)]


def test_bad_character_raises_with_position():
    with pytest.raises(LexError) as exc:
        tokenize("x ?\n")
    assert exc.value.line == 1
    assert exc.value.column == 3


def test_no_negative_number_literals():
    # '-' lexes as an operator; the parser treats it as binary only.
    assert kinds("-3") == [("op", "-"), ("nat", 3)]


def test_token_describe():
    assert Token("eof", None, 1, 1).describe() == "end of input"
    assert Token("ident", "foo", 1, 1).describe() == "'foo'"


def test_primes_and_digits_inside_identifiers():
    assert kinds("x'y2z") == [("ident", "x'y2z")]


def test_adjacent_tokens_without_spaces():
    assert kinds("f(x)@g") == [
        ("ident", "f"),
        ("op", "("),
        ("ident", "x"),
        ("op", ")"),
        ("op", "@"),
        ("ident", "g"),
    ]
