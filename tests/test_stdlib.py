"""Standard-library tests: everything loads, type checks, runs, analyses,
and specialises."""

import pytest

import repro
from repro.bt.analysis import analyse_program
from repro.anno import check_program
from repro.interp import run_program
from repro.modsys.program import load_program, load_program_dir
from repro.stdlib import MODULES, module_source, stdlib_dir, stdlib_source
from repro.types import infer_program


@pytest.fixture(scope="module")
def stdlib_linked():
    return load_program(stdlib_source())


def test_stdlib_loads_from_dir():
    linked = load_program_dir(stdlib_dir())
    assert set(linked.program.module_names()) == set(MODULES)


def test_stdlib_type_checks(stdlib_linked):
    env = infer_program(stdlib_linked)
    assert str(env.lookup("map")) == "(b -> a) -> [b] -> [a]"
    assert str(env.lookup("foldl")) == "(a -> b -> a) -> a -> [b] -> a"
    assert str(env.lookup("zipWith")) == "(b -> c -> a) -> [b] -> [c] -> [a]"
    assert str(env.lookup("alookup")) == "[(Nat, a)] -> Nat -> a -> a"


def test_stdlib_analyses_and_checks(stdlib_linked):
    analysis = analyse_program(stdlib_linked)
    check_program(analysis.annotated)
    assert set(analysis.schemes) >= {"map", "foldl", "gcd2", "alookup"}


def run_lib(func, *args):
    lp = load_program(stdlib_source())
    return run_program(lp, func, list(args))


def test_list_functions_run():
    assert run_lib("reverse", (1, 2, 3)) == (3, 2, 1)
    assert run_lib("append", (1,), (2, 3)) == (1, 2, 3)
    assert run_lib("length", (7, 8, 9)) == 3
    assert run_lib("take", 2, (1, 2, 3)) == (1, 2)
    assert run_lib("drop", 2, (1, 2, 3)) == (3,)
    assert run_lib("nth", (4, 5, 6), 1) == 5
    assert run_lib("iota", 4) == (1, 2, 3, 4)
    assert run_lib("sum", (1, 2, 3)) == 6
    assert run_lib("product", (2, 3, 4)) == 24
    assert run_lib("replicate", 3, 9) == (9, 9, 9)
    assert run_lib("concat", ((1,), (), (2, 3))) == (1, 2, 3)


def test_nat_functions_run():
    assert run_lib("max2", 3, 5) == 5
    assert run_lib("min2", 3, 5) == 3
    assert run_lib("even", 4) is True
    assert run_lib("odd", 4) is False
    assert run_lib("pow", 5, 2) == 32
    assert run_lib("gcd2", 12, 18) == 6
    assert run_lib("fib", 10) == 55
    assert run_lib("triangle", 4) == 10


def test_assoc_functions_run():
    from repro.lang.prims import make_pair

    ps = (make_pair(1, 10), make_pair(2, 20))
    assert run_lib("alookup", ps, 2, 0) == 20
    assert run_lib("alookup", ps, 9, 0) == 0
    assert run_lib("amember", ps, 1) is True
    assert run_lib("akeys", ps) == (1, 2)
    assert run_lib("avalues", ps) == (10, 20)
    assert run_lib("aremove", ps, 1) == (make_pair(2, 20),)


def test_specialise_stdlib_pow():
    gp = repro.compile_genexts(stdlib_source(("Nat",)))
    result = repro.specialise(gp, "pow", {"n": 4})
    assert result.run(3) == 81
    text = repro.pretty_program(result.program)
    assert "if" not in text  # fully unfolded


def test_specialise_stdlib_zipwith_static_ks():
    gp = repro.compile_genexts(
        stdlib_source(("Lists",))
        + """
module Main where
import Lists

dot ks xs = sum (zipWith (\\a -> \\b -> a * b) ks xs)
"""
    )
    result = repro.specialise(gp, "dot", {"ks": (2, 3)})
    assert result.run((10, 100)) == 320


def test_specialise_stdlib_alookup_static_table():
    from repro.lang.prims import make_pair

    gp = repro.compile_genexts(stdlib_source(("Lists", "Assoc")))
    table = (make_pair(1, 100), make_pair(2, 200))
    result = repro.specialise(gp, "alookup", {"ps": table, "d": 0})
    # Table compiled into a decision chain over the dynamic key.
    assert result.run(1) == 100
    assert result.run(2) == 200
    assert result.run(3) == 0


def test_unknown_stdlib_module_rejected():
    with pytest.raises(KeyError):
        module_source("Nope")
    with pytest.raises(KeyError):
        stdlib_source(("Nope",))


def test_assoc_pulls_lists_dependency():
    text = stdlib_source(("Assoc",))
    assert "module Lists where" in text
    load_program(text)  # links fine


def test_sort_functions_run():
    assert run_lib("isort", (3, 1, 2)) == (1, 2, 3)
    assert run_lib("msort", (5, 3, 9, 1, 1, 7)) == (1, 1, 3, 5, 7, 9)
    assert run_lib("merge", (1, 4), (2, 3)) == (1, 2, 3, 4)
    assert run_lib("minimum", (4, 2, 9)) == 2
    assert run_lib("maximum", (4, 2, 9)) == 9
    assert run_lib("issorted", (1, 2, 2, 5)) is True
    assert run_lib("issorted", (2, 1)) is False


def test_sort_specialises_static_input():
    gp = repro.compile_genexts(stdlib_source(("Sort",)))
    result = repro.specialise(gp, "isort", {"xs": (3, 1, 2)})
    assert result.run() == (1, 2, 3)


def test_msort_sorts_property():
    import hypothesis.strategies as st
    from hypothesis import given, settings

    lp = load_program(stdlib_source(("Sort",)))

    @given(st.lists(st.integers(0, 20), max_size=12).map(tuple))
    @settings(max_examples=50, deadline=None)
    def check(xs):
        out = run_program(lp, "msort", [xs])
        assert out == tuple(sorted(xs))
        assert run_program(lp, "isort", [xs]) == tuple(sorted(xs))

    check()
