"""E7: breadth-first vs depth-first specialisation (Sec. 5).

"Our experiments show that this [breadth-first] strategy is considerably
more space efficient" — the structural counters must reflect that: BFS
keeps at most a handful of specialisations active, DFS keeps one per
recursion level.
"""

import pytest

import repro
from repro.bench.generators import chain_program, fanout_program
from repro.residual.normalise import normalise_program
from repro.api import SpecOptions


def test_chain_bfs_keeps_one_active():
    gp = repro.compile_genexts(chain_program(60))
    result = repro.specialise(gp, "c0", {}, SpecOptions(strategy="bfs"))
    assert result.stats["active_peak"] == 1
    assert result.stats["pending_peak"] <= 2
    assert result.stats["specialisations"] == 60


def test_chain_dfs_active_grows_with_depth():
    gp = repro.compile_genexts(chain_program(60))
    result = repro.specialise(gp, "c0", {}, SpecOptions(strategy="dfs"))
    assert result.stats["active_peak"] == 60


def test_fanout_dfs_depth_vs_bfs_width():
    src, root = fanout_program(5, 2)
    gp = repro.compile_genexts(src)
    bfs = repro.specialise(gp, root, {}, SpecOptions(strategy="bfs"))
    dfs = repro.specialise(gp, root, {}, SpecOptions(strategy="dfs"))
    assert dfs.stats["active_peak"] == 5  # tree depth
    assert bfs.stats["active_peak"] == 1
    assert bfs.stats["specialisations"] == dfs.stats["specialisations"]


def test_strategies_equivalent_on_chain():
    gp = repro.compile_genexts(chain_program(20))
    bfs = repro.specialise(gp, "c0", {}, SpecOptions(strategy="bfs"))
    dfs = repro.specialise(gp, "c0", {}, SpecOptions(strategy="dfs"))
    assert normalise_program(bfs.program, bfs.entry) == normalise_program(
        dfs.program, dfs.entry
    )
    for x in (0, 1, 5):
        assert bfs.run(x) == dfs.run(x)


def test_strategies_equivalent_on_fanout():
    src, root = fanout_program(4, 3)
    gp = repro.compile_genexts(src)
    bfs = repro.specialise(gp, root, {}, SpecOptions(strategy="bfs"))
    dfs = repro.specialise(gp, root, {}, SpecOptions(strategy="dfs"))
    assert normalise_program(bfs.program, bfs.entry) == normalise_program(
        dfs.program, dfs.entry
    )


def test_memoisation_shares_across_strategies():
    # Diamond sharing: two call sites of the same specialisation must
    # produce one residual function under both strategies.
    src = (
        "module M where\n\n"
        "leaf x = if x == 0 then 0 else x + 1\n"
        "top x = leaf (x + 1) + leaf (x + 2)\n"
    )
    gp = repro.compile_genexts(src, SpecOptions(force_residual={"leaf", "top"}))
    for strategy in ("bfs", "dfs"):
        result = repro.specialise(gp, "top", {}, SpecOptions(strategy=strategy))
        assert result.stats["specialisations"] == 2  # top and one leaf
        assert result.stats["memo_hits"] == 1
