"""Specialisation-runtime unit tests: partially static values, splitting,
coercion/dynamisation, generating versions of the primitives."""

import pytest

from repro.genext import runtime as rt
from repro.lang.ast import Call, If, Lam, Lit, Prim, Var
from repro.modsys.graph import ModuleGraph


def state(strategy="bfs"):
    fn_info = {
        "f": rt.FnInfo("f", "A", ("a", "b"), ("f",)),
        "g": rt.FnInfo("g", "B", ("x",), ("g",)),
    }
    graph = ModuleGraph({"A": (), "B": ("A",)})
    return rt.SpecState(fn_info, graph, strategy=strategy)


# -- value injection -----------------------------------------------------------


def test_from_python_base_values():
    assert rt.from_python(5) == rt.SBase(5)
    assert rt.from_python(True) == rt.SBase(True)


def test_from_python_lists_and_pairs():
    pe = rt.from_python((1, 2))
    assert pe == rt.SList((rt.SBase(1), rt.SBase(2)))
    pe = rt.from_python(("pair", 1, (2,)))
    assert pe == rt.SPair(rt.SBase(1), rt.SList((rt.SBase(2),)))


def test_to_python_roundtrip():
    for v in (0, True, (1, 2, 3), ("pair", 1, 2), ((1,), (2, 3))):
        assert rt.to_python(rt.from_python(v)) == v


def test_to_python_rejects_dynamic():
    with pytest.raises(rt.SpecError):
        rt.to_python(rt.DCode(Var("x")))


# -- dynamisation -----------------------------------------------------------------


def test_dynamize_base():
    st = state()
    assert rt.dynamize(st, rt.SBase(7)) == rt.DCode(Lit(7))


def test_dynamize_list_builds_cons_chain():
    st = state()
    out = rt.dynamize(st, rt.SList((rt.SBase(1), rt.DCode(Var("y")))))
    assert out.code == Prim(
        "cons", (Lit(1), Prim("cons", (Var("y"), Lit(()))))
    )


def test_dynamize_pair():
    st = state()
    out = rt.dynamize(st, rt.SPair(rt.SBase(1), rt.SBase(2)))
    assert out.code == Prim("pair", (Lit(1), Lit(2)))


def test_dynamize_is_identity_on_code():
    st = state()
    d = rt.DCode(Var("x"))
    assert rt.dynamize(st, d) is d


def test_dynamize_closure_residualises_lambda():
    st = state()

    def helper(st_, arg):
        return rt.mk_prim(st_, "+", rt.D, (arg, rt.DCode(Lit(1))))

    clo = rt.SClo("x", helper, (), (), "lab", ())
    out = rt.dynamize(st, clo)
    assert isinstance(out.code, Lam)
    assert out.code.body == Prim("+", (Var(out.code.var), Lit(1)))


# -- coercion ---------------------------------------------------------------------


def test_coerce_static_base_target_is_identity():
    st = state()
    pe = rt.SBase(3)
    assert rt.coerce(st, pe, rt.TBase("Nat", rt.S)) is pe


def test_coerce_dynamic_base_lifts():
    st = state()
    assert rt.coerce(st, rt.SBase(3), rt.TBase("Nat", rt.D)) == rt.DCode(Lit(3))


def test_coerce_partially_static_list():
    st = state()
    pe = rt.SList((rt.SBase(1), rt.SBase(2)))
    out = rt.coerce(st, pe, rt.TList(rt.S, rt.TBase("Nat", rt.D)))
    assert out == rt.SList((rt.DCode(Lit(1)), rt.DCode(Lit(2))))


def test_coerce_dynamic_list_dynamises_fully():
    st = state()
    pe = rt.SList((rt.SBase(1),))
    out = rt.coerce(st, pe, rt.TList(rt.D, rt.TBase("Nat", rt.D)))
    assert out.code == Prim("cons", (Lit(1), Lit(())))


def test_coerce_pair_componentwise():
    st = state()
    pe = rt.SPair(rt.SBase(1), rt.SBase(2))
    out = rt.coerce(
        st, pe, rt.TPair(rt.S, rt.TBase("Nat", rt.S), rt.TBase("Nat", rt.D))
    )
    assert out == rt.SPair(rt.SBase(1), rt.DCode(Lit(2)))


def test_coerce_skel_static_identity():
    st = state()
    pe = rt.SBase(1)
    assert rt.coerce(st, pe, rt.TSkel(rt.S)) is pe


def test_coerce_skel_dynamic_dynamises():
    st = state()
    assert rt.coerce(st, rt.SBase(1), rt.TSkel(rt.D)) == rt.DCode(Lit(1))


def test_coerce_code_where_static_spine_needed_fails():
    st = state()
    with pytest.raises(rt.SpecError):
        rt.coerce(
            st, rt.DCode(Var("x")), rt.TList(rt.S, rt.TBase("Nat", rt.S))
        )


# -- generating versions of primitives -----------------------------------------------


def test_mk_prim_static_arithmetic():
    st = state()
    out = rt.mk_prim(st, "+", rt.S, (rt.SBase(2), rt.SBase(3)))
    assert out == rt.SBase(5)


def test_mk_prim_dynamic_builds_code():
    st = state()
    out = rt.mk_prim(st, "+", rt.D, (rt.DCode(Var("x")), rt.DCode(Lit(1))))
    assert out.code == Prim("+", (Var("x"), Lit(1)))


def test_mk_prim_static_cons_preserves_partial_values():
    st = state()
    out = rt.mk_prim(
        st, "cons", rt.S, (rt.DCode(Var("x")), rt.SList((rt.SBase(1),)))
    )
    assert out == rt.SList((rt.DCode(Var("x")), rt.SBase(1)))


def test_mk_prim_static_head_and_null():
    st = state()
    xs = rt.SList((rt.SBase(1), rt.SBase(2)))
    assert rt.mk_prim(st, "head", rt.S, (xs,)) == rt.SBase(1)
    assert rt.mk_prim(st, "null", rt.S, (xs,)) == rt.SBase(False)
    assert rt.mk_prim(st, "tail", rt.S, (xs,)) == rt.SList((rt.SBase(2),))


def test_mk_prim_static_error_surfaces_as_spec_error():
    st = state()
    with pytest.raises(rt.SpecError):
        rt.mk_prim(st, "head", rt.S, (rt.SList(()),))
    with pytest.raises(rt.SpecError):
        rt.mk_prim(st, "div", rt.S, (rt.SBase(1), rt.SBase(0)))


def test_mk_if_static_takes_one_branch():
    st = state()
    taken = []
    out = rt.mk_if(
        st,
        rt.S,
        rt.SBase(True),
        lambda: taken.append("then") or rt.SBase(1),
        lambda: taken.append("else") or rt.SBase(2),
    )
    assert out == rt.SBase(1)
    assert taken == ["then"]


def test_mk_if_dynamic_builds_both_branches():
    st = state()
    out = rt.mk_if(
        st,
        rt.D,
        rt.DCode(Var("c")),
        lambda: rt.DCode(Lit(1)),
        lambda: rt.DCode(Lit(2)),
    )
    assert out.code == If(Var("c"), Lit(1), Lit(2))


def test_mk_if_static_requires_boolean():
    st = state()
    with pytest.raises(rt.SpecError):
        rt.mk_if(st, rt.S, rt.SBase(3), lambda: None, lambda: None)


def test_mk_app_static_unfolds_closure():
    st = state()
    clo = rt.SClo(
        "x",
        lambda st_, arg: rt.mk_prim(st_, "+", rt.S, (arg, rt.SBase(1))),
        (),
        (),
        "lab",
        (),
    )
    assert rt.mk_app(st, rt.S, clo, rt.SBase(41)) == rt.SBase(42)


def test_mk_app_dynamic_builds_application():
    st = state()
    out = rt.mk_app(st, rt.D, rt.DCode(Var("f")), rt.DCode(Lit(1)))
    from repro.lang.ast import App

    assert out.code == App(Var("f"), Lit(1))


# -- mk_resid -------------------------------------------------------------------------


def _build_id_body(args):
    return rt.DCode(args[0].code)


def test_mk_resid_unfolds_when_static():
    st = state()
    out = rt.mk_resid(
        st, rt.S, "f", (rt.S,), (rt.SBase(1),),
        lambda: rt.SBase(99),
        _build_id_body,
    )
    assert out == rt.SBase(99)
    assert st.stats.unfolds == 1
    assert st.stats.specialisations == 0


def test_mk_resid_creates_residual_function():
    st = state()
    out = rt.mk_resid(
        st, rt.D, "f", (rt.D,), (rt.DCode(Var("q")),),
        lambda: pytest.fail("must not unfold"),
        _build_id_body,
    )
    assert isinstance(out.code, Call)
    assert out.code.args == (Var("q"),)
    st.run_pending()
    assert len(st.defs) == 1
    placement, d = st.defs[0]
    assert placement == frozenset({"A"})


def test_mk_resid_memoises_on_static_parts():
    st = state()
    common = dict(
        unfolded=lambda: None,
    )
    out1 = rt.mk_resid(
        st, rt.D, "f", (rt.S, rt.D), (rt.SBase(3), rt.DCode(Var("a"))),
        lambda: None, lambda args: rt.DCode(args[0].code if isinstance(args[0], rt.DCode) else Lit(0)),
    )
    out2 = rt.mk_resid(
        st, rt.D, "f", (rt.S, rt.D), (rt.SBase(3), rt.DCode(Var("b"))),
        lambda: None, lambda args: rt.DCode(Lit(0)),
    )
    assert out1.code.func == out2.code.func  # same residual function
    assert out1.code.args == (Var("a"),)
    assert out2.code.args == (Var("b"),)
    assert st.stats.specialisations == 1
    assert st.stats.memo_hits == 1


def test_mk_resid_distinguishes_binding_times():
    st = state()
    a = rt.mk_resid(
        st, rt.D, "f", (rt.S,), (rt.SBase(1),), lambda: None,
        lambda args: rt.DCode(Lit(1)),
    )
    b = rt.mk_resid(
        st, rt.D, "f", (rt.D,), (rt.DCode(Lit(1)),), lambda: None,
        lambda args: rt.DCode(Lit(1)),
    )
    assert a.code.func != b.code.func


def test_mk_resid_closure_static_part_in_key():
    st = state()

    def helper(st_, arg, k):
        return arg

    def call_with(kval, varname):
        clo = rt.SClo("x", helper, (), (("k", kval),), "lab", ("g",))
        return rt.mk_resid(
            st, rt.D, "f", (rt.S,), (clo,), lambda: None,
            lambda args: rt.DCode(Lit(0)),
        )

    a = call_with(rt.SBase(1), "p")
    b = call_with(rt.SBase(1), "q")
    c = call_with(rt.SBase(2), "r")
    assert a.code.func == b.code.func
    assert a.code.func != c.code.func


def test_mk_resid_closure_dynamic_env_becomes_parameter():
    st = state()

    def helper(st_, arg, k):
        return rt.mk_prim(st_, "+", rt.D, (arg, k))

    clo = rt.SClo("x", helper, (), (("k", rt.DCode(Var("z")),),), "lab", ("g",))
    out = rt.mk_resid(
        st, rt.D, "f", (rt.S,), (clo,), lambda: None,
        lambda args: args[0].apply(st, rt.DCode(Var("w"))),
    )
    # The dynamic environment component is passed as an argument.
    assert out.code.args == (Var("z"),)
    st.run_pending()


def test_placement_uses_closure_fvs():
    st = state()
    clo = rt.SClo("x", lambda st_, a: a, (), (), "lab", ("g",))
    placement = st.place("f", (clo,))
    # f lives in A, g in B; B imports A, so the combination reduces to B.
    assert placement == frozenset({"B"})


def test_fresh_names_are_deterministic():
    st = state()
    assert st.fresh_fun_name("f") == "f_1"
    assert st.fresh_fun_name("f") == "f_2"
    assert st.fresh_var("x") == "x_1"


def test_invalid_strategy_rejected():
    with pytest.raises(ValueError):
        rt.SpecState({}, ModuleGraph({}), strategy="zigzag")
