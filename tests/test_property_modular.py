"""Property-based testing over randomly generated *modular* programs.

Generates multi-module first-order programs with random import DAGs and
random call structure, specialises a random goal under a random
static/dynamic division, and checks the paper's structural guarantees:

* the residual program links and type checks;
* residual imports are acyclic and no module is empty;
* every residual module is a combination of source modules;
* the residual program is semantically equivalent to the source;
* mix produces the identical residual program.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.interp import run_program
from repro.modsys.program import load_program
from repro.specialiser import mix_specialise
from repro.types import infer_program


@st.composite
def modular_programs(draw):
    n_modules = draw(st.integers(2, 4))
    defs_per_module = draw(st.integers(1, 3))
    lines = []
    all_defs = []  # (fname, module index)
    for m in range(n_modules):
        imports = sorted(
            draw(
                st.sets(st.integers(0, m - 1), max_size=m)
            )
        ) if m else []
        lines.append("module M%d where" % m)
        for dep in imports:
            lines.append("import M%d" % dep)
        lines.append("")
        visible = [f for (f, home) in all_defs if home in imports]
        for i in range(defs_per_module):
            fname = "f%d_%d" % (m, i)
            # Recursive loop with optional calls into visible functions.
            extra = ""
            callee = draw(
                st.one_of(st.none(), st.sampled_from(visible))
            ) if visible else None
            k = draw(st.integers(1, 5))
            if callee is not None:
                extra = " + %s (n - 1) y" % callee
            lines.append(
                "%s n y = if n == 0 then y else %s (n - 1) (y + %d)%s"
                % (fname, fname, k, extra)
            )
            all_defs.append((fname, m))
        lines.append("")
    goal, goal_module = draw(st.sampled_from(all_defs))
    static_n = draw(st.one_of(st.none(), st.integers(0, 4)))
    return "\n".join(lines), goal, static_n


@given(case=modular_programs(), y=st.integers(0, 9), n_dyn=st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_random_modular_programs(case, y, n_dyn):
    source, goal, static_n = case
    linked = load_program(source)
    gp = repro.compile_genexts(linked)
    static = {} if static_n is None else {"n": static_n}
    result = repro.specialise(gp, goal, static)

    # Structural guarantees.
    source_modules = set(linked.program.module_names())
    for m in result.program.modules:
        assert m.defs, "empty residual module"
        # Residual module names are concatenations of source modules.
        assert any(m.name.startswith(s) for s in source_modules)
    result.linked.graph.check_acyclic()
    infer_program(result.linked)

    # Semantic equivalence.
    n_value = static_n if static_n is not None else n_dyn
    expected = run_program(linked, goal, [n_value, y])
    if static_n is None:
        assert result.run(n_dyn, y) == expected
    else:
        assert result.run(y) == expected

    # mix agreement.
    mix_result = mix_specialise(source, goal, static)
    assert mix_result.program == result.program
