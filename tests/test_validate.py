"""Name resolution and structural validation tests."""

import pytest

from repro.lang.ast import Call, Prim, Var
from repro.lang.errors import ValidationError
from repro.lang.parser import parse_module
from repro.lang.validate import resolve_module
from repro.modsys.program import load_program


def resolve(source, imported=None):
    return resolve_module(parse_module(source), imported or {})


def test_zero_arity_reference_becomes_call():
    m = resolve("module M where\n\nc = 1\nf x = x + c\n")
    assert m.defs[1].body == Prim("+", (Var("x"), Call("c", ())))


def test_local_variable_shadows_zero_arity_function():
    m = resolve("module M where\n\nc = 1\nf c = c\n")
    assert m.defs[1].body == Var("c")


def test_unbound_variable_rejected():
    with pytest.raises(ValidationError) as exc:
        resolve("module M where\n\nf x = y\n")
    assert "unbound variable 'y'" in str(exc.value)


def test_unknown_function_rejected():
    with pytest.raises(ValidationError) as exc:
        resolve("module M where\n\nf x = g x\n")
    assert "unknown function 'g'" in str(exc.value)


def test_arity_mismatch_rejected():
    with pytest.raises(ValidationError) as exc:
        resolve("module M where\n\ng x y = x\nf x = g x\n")
    assert "expects 2 arguments" in str(exc.value)


def test_partial_application_of_named_function_rejected():
    with pytest.raises(ValidationError) as exc:
        resolve("module M where\n\ng x y = x\nf x = g\n")
    assert "fully applied" in str(exc.value)


def test_juxtaposing_a_local_variable_rejected():
    with pytest.raises(ValidationError) as exc:
        resolve("module M where\n\nf g x = g x\n")
    assert "'@'" in str(exc.value)


def test_lambda_var_shadows_function():
    m = resolve("module M where\n\nc = 1\nf x = (\\c -> c) @ x\n")
    lam = m.defs[1].body.fun
    assert lam.body == Var("c")


def test_duplicate_definition_rejected():
    with pytest.raises(ValidationError):
        resolve("module M where\n\nf x = x\nf y = y\n")


def test_redefining_imported_function_rejected():
    with pytest.raises(ValidationError):
        resolve("module M where\n\nf x = x\n", imported={"f": 1})


def test_imported_functions_resolvable():
    m = resolve("module M where\n\nf x = g x x\n", imported={"g": 2})
    assert m.defs[0].body == Call("g", (Var("x"), Var("x")))


def test_recursion_within_module():
    m = resolve("module M where\n\nf x = if x == 0 then 0 else f (x - 1)\n")
    assert m.defs[0].body.else_branch.func == "f"


def test_forward_references_within_module():
    m = resolve("module M where\n\nf x = g x\ng x = x\n")
    assert m.defs[0].body == Call("g", (Var("x"),))


# -- program level (load_program) ---------------------------------------------


def test_import_is_not_transitive():
    source = (
        "module A where\n\nf x = x\n"
        "module B where\nimport A\n\ng x = f x\n"
        "module C where\nimport B\n\nh x = f x\n"
    )
    with pytest.raises(ValidationError):
        load_program(source)


def test_global_function_name_uniqueness():
    source = "module A where\n\nf x = x\nmodule B where\n\nf x = x\n"
    with pytest.raises(ValidationError) as exc:
        load_program(source)
    assert "unique" in str(exc.value)


def test_duplicate_module_names_rejected():
    source = "module A where\n\nf x = x\nmodule A where\n\ng x = x\n"
    with pytest.raises(ValidationError):
        load_program(source)
