"""E2: the paper's Fig. 2 — the analysis of ``power``, golden-tested.

The paper annotates ``power`` as::

    power {t u} n x =t if n = [S -> t]1 then [u -> t u u]x
                       else [u -> t u u]x  x_{t u u}  power {t u} (n - [S -> t]1) x

and assigns the principal binding-time type ``forall t,u. t -> u -> t u u``.
"""

import pytest

from repro.anno.ast import ACall, ACoerce, AIf, ALit, APrim, AVar
from repro.anno.pretty import pretty_adef
from repro.bt.analysis import analyse_program
from repro.bt.bt import BT, D, S, bt_lub, var
from repro.bench.generators import power_source
from repro.modsys.program import load_program


@pytest.fixture(scope="module")
def power_analysis():
    return analyse_program(load_program(power_source()))


@pytest.fixture(scope="module")
def power_def(power_analysis):
    return power_analysis.annotated.module("Power").find("power")


def test_principal_scheme_is_the_papers(power_analysis):
    scheme = power_analysis.schemes["power"]
    sol = scheme.solve_symbolic()
    assert scheme.input_names() == ("t", "u")
    assert sol[scheme.args[0].bt] == var("t")
    assert sol[scheme.args[1].bt] == var("u")
    assert sol[scheme.res.bt] == bt_lub(var("t"), var("u"))
    assert sol[scheme.unfold] == var("t")
    assert scheme.qualifications() == frozenset()


def test_binding_time_parameters(power_def):
    assert power_def.bt_params == ("t", "u")
    assert power_def.params == ("n", "x")


def test_unfold_annotation_is_t(power_def):
    # The equality sign is annotated t: unfold only when n is static.
    assert power_def.unfold == var("t")


def test_conditional_annotated_t(power_def):
    body = power_def.body
    assert isinstance(body, AIf)
    assert body.bt == var("t")


def test_comparison_annotated_t(power_def):
    cond = power_def.body.cond
    # The condition may sit under an identity-pruned coercion.
    while isinstance(cond, ACoerce):
        cond = cond.expr
    assert isinstance(cond, APrim) and cond.op == "=="
    assert cond.bt == var("t")


def test_literal_one_lifted_from_s_to_t(power_def):
    cond = power_def.body.cond
    while isinstance(cond, ACoerce):
        cond = cond.expr
    lifted = cond.args[1]
    assert isinstance(lifted, ACoerce)
    assert lifted.src.bt == S
    assert lifted.dst.bt == var("t")
    assert isinstance(lifted.expr, ALit) and lifted.expr.value == 1


def test_then_branch_coerces_x_up_to_t_lub_u(power_def):
    then = power_def.body.then_branch
    assert isinstance(then, ACoerce)
    assert then.src.bt == var("u")
    assert then.dst.bt == bt_lub(var("t"), var("u"))
    assert isinstance(then.expr, AVar) and then.expr.name == "x"


def test_multiplication_at_t_lub_u(power_def):
    else_ = power_def.body.else_branch
    assert isinstance(else_, APrim) and else_.op == "*"
    assert else_.bt == bt_lub(var("t"), var("u"))


def test_recursive_call_passes_t_u(power_def):
    else_ = power_def.body.else_branch
    call = else_.args[1]
    while isinstance(call, ACoerce):
        call = call.expr
    assert isinstance(call, ACall)
    assert call.func == "power"
    assert call.bt_args == (var("t"), var("u"))


def test_pretty_matches_paper_shape(power_def):
    text = pretty_adef(power_def)
    assert text.startswith("power {t u} n x =t")
    assert "[Nat^S -> Nat^t]1" in text
    assert "[Nat^u -> Nat^t|u]x" in text
    assert "*{t|u}" in text
    assert "power {t u}" in text


def test_param_and_result_types(power_def):
    from repro.bt.scheme import btt_to_str

    assert btt_to_str(power_def.param_types[0]) == "Nat^t"
    assert btt_to_str(power_def.param_types[1]) == "Nat^u"
    assert btt_to_str(power_def.res_type) == "Nat^t|u"


def test_fixpoint_reaches_same_scheme_under_forcing():
    # With power forced residual, unfold becomes D and the result is
    # dragged fully dynamic.
    analysis = analyse_program(
        load_program(power_source()), force_residual={"power"}
    )
    scheme = analysis.schemes["power"]
    sol = scheme.solve_symbolic()
    assert sol[scheme.unfold] == D
    assert sol[scheme.res.bt] == D
