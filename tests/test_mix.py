"""Baseline-specialiser (`mix`) tests beyond the corpus equivalence."""

import pytest

import repro
from repro.bench.generators import power_source
from repro.specialiser import MixProgram, mix_specialise
from repro.api import SpecOptions


def test_front_end_time_is_recorded():
    mp = MixProgram.from_source(power_source())
    assert mp.front_end_seconds > 0


def test_mix_program_protocol():
    mp = MixProgram.from_source(power_source())
    assert mp.signature("power").params == ("n", "x")
    st = mp.new_state()
    assert st.strategy == "bfs"
    assert callable(mp.mk("power"))


def test_mix_unfold_direction():
    result = mix_specialise(power_source(), "power", {"n": 3})
    assert result.run(2) == 8
    assert result.stats["unfolds"] == 3
    assert result.stats["specialisations"] == 0


def test_mix_residual_direction():
    result = mix_specialise(power_source(), "power", {"x": 2})
    assert result.run(6) == 64
    assert result.stats["specialisations"] == 1


def test_mix_higher_order():
    src = (
        "module A where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "module B where\nimport A\n\n"
        "scale k xs = map (\\x -> k * x) xs\n"
    )
    result = mix_specialise(src, "scale", {"k": 3})
    assert result.run((1, 2)) == (3, 6)


def test_mix_strategies_agree():
    from repro.residual.normalise import normalise_program

    bfs = mix_specialise(power_source(), "power", {"x": 5}, SpecOptions(strategy="bfs"))
    dfs = mix_specialise(power_source(), "power", {"x": 5}, SpecOptions(strategy="dfs"))
    assert normalise_program(bfs.program, bfs.entry) == normalise_program(
        dfs.program, dfs.entry
    )


def test_mix_force_residual():
    result = mix_specialise(power_source(), "power", {"n": 3}, SpecOptions(force_residual={"power"}))
    # Forced residual: no unfolding even with static n; polyvariant chain.
    assert result.stats["specialisations"] == 3
    assert result.run(2) == 8


def test_mix_monolithic():
    result = mix_specialise(power_source(), "power", {"x": 2}, SpecOptions(monolithic=True))
    assert len(result.program.modules) == 1


def test_mix_interpretive_overhead_exists():
    """mix re-walks annotated ASTs; the genext does not.  Both must give
    the same answers — the *cost* difference is measured in benchmarks,
    here we only check mix exposes the same behaviour on a non-trivial
    workload."""
    from repro.bench.generators import machine_interpreter_source
    from repro.lang.prims import make_pair

    src = machine_interpreter_source()
    prog = (make_pair(3, 9), make_pair(0, 1), make_pair(1, 2))
    mix_result = mix_specialise(src, "run", {"prog": prog})
    gp = repro.compile_genexts(src)
    genext_result = repro.specialise(gp, "run", {"prog": prog})
    assert mix_result.program == genext_result.program
    assert mix_result.run(5) == genext_result.run(5) == 20
