"""The three-tier execution ladder (``repro.backend.tiers``).

Covers: hotness-driven promotion, the persisted tier-2 artifacts
(``resid.py`` + the cache-tag-keyed marshalled code object), the
silent fallback chain (memo → code artifact → recompiled source →
tier 1), cold-restart durability, warm-hit promotion from the
specialise paths (batch driver and daemon), the serve daemon's ``run``
op, fsck validation of the new artifact kinds, the decode memo, and
the RTCG LRU metrics satellites.
"""

import json
import marshal
import os

import pytest

import repro
from repro.api import SpecOptions
from repro.backend.tiers import (
    DEFAULT_TIER_POLICY,
    TIER2_SCHEMA,
    TierLadder,
    TierPolicy,
    clear_tiers,
    emit_source,
    load_compiled,
    note_warm,
    parse_source_header,
)
from repro.obs import Obs
from repro.pipeline.cache import ArtifactCache, CODE_KIND, RESID_PY_KIND
from repro.speccache import SpecCache, residual_cache_key

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""


@pytest.fixture
def gp():
    return repro.compile_genexts(POWER)


def _counters(obs):
    return dict(obs.metrics.snapshot()["counters"])


# ---------------------------------------------------------------------------
# Policy and options plumbing
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_defaults(self):
        assert DEFAULT_TIER_POLICY == TierPolicy(
            warm_after=1, hot_after=3, persist=True
        )

    def test_rejects_negative_warm(self):
        with pytest.raises(ValueError):
            TierPolicy(warm_after=-1)

    def test_rejects_hot_below_warm(self):
        with pytest.raises(ValueError):
            TierPolicy(warm_after=5, hot_after=2)

    def test_spec_options_accepts_policy(self):
        options = SpecOptions(tier_policy=TierPolicy(hot_after=7))
        assert options.tier_policy.hot_after == 7

    def test_spec_options_rejects_junk_policy(self):
        with pytest.raises(TypeError):
            SpecOptions(tier_policy="eager")

    def test_tier_policy_is_not_part_of_the_cache_key(self, gp):
        """An execution knob (like fuel) must not fork the residual
        cache: the same request with and without a policy shares one
        key."""
        fp = gp.fingerprint()
        plain = residual_cache_key(fp, "power", {"n": 3}, SpecOptions())
        tiered = residual_cache_key(
            fp, "power", {"n": 3},
            SpecOptions(tier_policy=TierPolicy(hot_after=9)),
        )
        assert plain == tiered


# ---------------------------------------------------------------------------
# The ladder
# ---------------------------------------------------------------------------


class TestLadder:
    def test_promotion_sequence(self, gp, tmp_path):
        obs = Obs()
        ladder = TierLadder(
            gp,
            options=SpecOptions(
                cache_dir=str(tmp_path),
                tier_policy=TierPolicy(warm_after=2, hot_after=3),
            ),
            obs=obs,
            program=repro.load_program(POWER),
        )
        runs = [ladder.call("power", {"n": 3}, (5,)) for _ in range(5)]
        assert [r.value for r in runs] == [125] * 5
        assert [r.tier for r in runs] == [0, 1, 2, 2, 2]
        assert runs[2].origin == "emitted"
        assert runs[3].origin == "memo"
        c = _counters(obs)
        assert c["tier.t0_runs"] == 1
        assert c["tier.t1_runs"] == 1
        assert c["tier.t2_runs"] == 3
        assert c["tier.promotions"] == 1
        assert c["tier.memo_hits"] == 2

    def test_without_general_program_cold_goals_start_at_tier1(self, gp):
        ladder = TierLadder(
            gp,
            options=SpecOptions(
                tier_policy=TierPolicy(warm_after=5, hot_after=9)
            ),
        )
        assert ladder.call("power", {"n": 3}, (2,)).tier == 1

    def test_forced_tiers_agree_and_skip_hotness(self, gp, tmp_path):
        ladder = TierLadder(
            gp,
            options=SpecOptions(cache_dir=str(tmp_path)),
            program=repro.load_program(POWER),
        )
        # Forced tier-0/1 probes never count towards promotion: the
        # organic call after them is still the first (tier 1 under the
        # default warm_after=1).
        for t in (0, 1):
            assert ladder.call("power", {"n": 4}, (3,), tier=t).value == 81
        assert ladder.call("power", {"n": 4}, (3,)).tier == 1
        # A forced tier-2 probe agrees too (and memoises the callable:
        # later calls are answered by the memo, not the counters).
        assert ladder.call("power", {"n": 4}, (3,), tier=2).value == 81
        assert ladder.call("power", {"n": 4}, (3,)).origin == "memo"

    def test_promotion_persists_both_artifacts(self, gp, tmp_path):
        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=1)
        )
        ladder = TierLadder(gp, options=options)
        run = ladder.call("power", {"n": 3}, (2,))
        assert (run.tier, run.value) == (2, 8)
        key = ladder.key_for("power", {"n": 3})
        store = ArtifactCache(str(tmp_path))
        assert store.has(key, RESID_PY_KIND)
        assert store.has(key, CODE_KIND)
        header = parse_source_header(store.get_text(key, RESID_PY_KIND))
        assert header is not None and header[0] == "power"
        record = marshal.loads(store.get_bytes(key, CODE_KIND))
        assert record["schema"] == TIER2_SCHEMA

    def test_persist_false_keeps_promotion_process_local(self, gp, tmp_path):
        options = SpecOptions(
            cache_dir=str(tmp_path),
            tier_policy=TierPolicy(hot_after=1, persist=False),
        )
        ladder = TierLadder(gp, options=options)
        assert ladder.call("power", {"n": 3}, (2,)).tier == 2
        key = ladder.key_for("power", {"n": 3})
        store = ArtifactCache(str(tmp_path))
        assert not store.has(key, RESID_PY_KIND)
        assert not store.has(key, CODE_KIND)

    def test_cold_restart_serves_from_persisted_artifact(self, gp, tmp_path):
        """The acceptance scenario: after a promotion, a fresh process
        (fresh memo, fresh obs) answers tier 2 straight from the
        marshalled code object — no specialisation, no emit, no
        ``compile()`` from the AST."""
        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=1)
        )
        TierLadder(gp, options=options).call("power", {"n": 6}, (2,))

        clear_tiers()  # the "restart"
        obs = Obs()
        run = TierLadder(gp, options=options, obs=obs).call(
            "power", {"n": 6}, (2,)
        )
        assert (run.value, run.tier, run.origin) == (64, 2, "code")
        c = _counters(obs)
        assert c["tier.code_loads"] == 1
        assert "tier.emitted" not in c
        assert "tier.source_compiles" not in c
        assert "spec.requests" not in c  # the specialiser never ran
        # The healthy artifact decoded first try: a decode miss here
        # would mean the restart silently repaired its own artifact.
        assert c.get("tier.code_decode_miss", 0) == 0

    def test_wrong_cache_tag_falls_back_to_source_and_self_heals(
        self, gp, tmp_path
    ):
        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=1)
        )
        ladder = TierLadder(gp, options=options)
        ladder.call("power", {"n": 5}, (2,))
        key = ladder.key_for("power", {"n": 5})
        store = ArtifactCache(str(tmp_path))
        record = marshal.loads(store.get_bytes(key, CODE_KIND))
        record["tag"] = "some-other-interpreter"
        del record["code"]  # a foreign code object would not unmarshal
        store.put_bytes(key, CODE_KIND, marshal.dumps(record))

        clear_tiers()
        obs = Obs()
        fn = load_compiled(store, key, obs=obs)
        assert fn is not None and fn.origin == "source"
        assert fn(2) == 32
        assert _counters(obs)["tier.source_compiles"] == 1
        # Self-heal republished a loadable code artifact.
        obs2 = Obs()
        again = load_compiled(store, key, obs=obs2)
        assert again is not None and again.origin == "code"

    def test_corrupt_code_artifact_falls_back_to_source(self, gp, tmp_path):
        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=1)
        )
        ladder = TierLadder(gp, options=options)
        ladder.call("power", {"n": 5}, (2,))
        key = ladder.key_for("power", {"n": 5})
        store = ArtifactCache(str(tmp_path))
        store.put_bytes(key, CODE_KIND, b"\x00garbage")
        clear_tiers()
        fn = load_compiled(store, key)
        assert fn is not None and fn.origin == "source"
        assert fn(3) == 243

    def test_both_artifacts_missing_is_a_clean_miss(self, gp, tmp_path):
        store = ArtifactCache(str(tmp_path))
        assert load_compiled(store, "0" * 64) is None

    def test_headerless_source_is_a_miss(self, gp, tmp_path):
        store = ArtifactCache(str(tmp_path))
        store.put_text("1" * 64, RESID_PY_KIND, "x = 1\n")
        assert load_compiled(store, "1" * 64) is None

    def test_ladder_matches_interpreter_on_tuples(self, tmp_path):
        source = (
            "module M where\n\n"
            "rep n x = if n == 0 then nil else x : rep (n - 1) x\n"
        )
        gp = repro.compile_genexts(source)
        ladder = TierLadder(
            gp,
            options=SpecOptions(cache_dir=str(tmp_path)),
            program=repro.load_program(source),
        )
        for tier in (0, 1, 2):
            run = ladder.call("rep", {"n": 3}, (7,), tier=tier)
            assert run.value == (7, 7, 7)

    def test_emit_source_header_round_trips(self, gp):
        from repro.genext.engine import specialise

        result = specialise(gp, "power", {"n": 3})
        text, entry_py = emit_source(result)
        assert parse_source_header(text) == (
            "power", entry_py, tuple(result.dynamic_params)
        )


# ---------------------------------------------------------------------------
# Warm-hit promotion (the batch driver / daemon consultation point)
# ---------------------------------------------------------------------------


class TestNoteWarm:
    def test_promotes_at_threshold_from_payload(self, gp, tmp_path):
        from repro.genext.engine import specialise
        from repro.speccache import encode_result

        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=2)
        )
        cache = SpecCache(str(tmp_path))
        result = specialise(gp, "power", {"n": 3}, options)
        payload = encode_result(result)
        key = residual_cache_key(
            gp.fingerprint(), "power", {"n": 3}, options
        )
        obs = Obs()
        first = note_warm(
            cache, key, "power", options, obs=obs, payload=payload
        )
        assert first is None  # count 1 < hot_after 2
        second = note_warm(
            cache, key, "power", options, obs=obs, payload=payload
        )
        assert second is not None and second(2) == 8
        assert cache.store.has(key, CODE_KIND)
        assert _counters(obs)["tier.promotions"] == 1

    def test_batch_warm_path_promotes(self, gp, tmp_path):
        """specialise_many's in-parent warm hit feeds the ladder: by
        the policy's threshold the artifacts are on disk."""
        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=2)
        )
        requests = [{"goal": "power", "static_args": {"n": 3}}]
        repro.specialise_many(gp, requests, options)  # cold: misses
        obs = Obs()
        repro.specialise_many(gp, requests, options, obs=obs)  # warm #1
        repro.specialise_many(gp, requests, options, obs=obs)  # warm #2
        key = residual_cache_key(
            gp.fingerprint(), "power", {"n": 3}, options
        )
        assert ArtifactCache(str(tmp_path)).has(key, CODE_KIND)
        assert _counters(obs)["tier.promotions"] == 1

    def test_batch_without_policy_never_touches_the_ladder(
        self, gp, tmp_path
    ):
        options = SpecOptions(cache_dir=str(tmp_path))
        requests = [{"goal": "power", "static_args": {"n": 3}}]
        obs = Obs()
        for _ in range(4):
            repro.specialise_many(gp, requests, options, obs=obs)
        assert not any(
            name.startswith("tier.") for name in _counters(obs)
        )


# ---------------------------------------------------------------------------
# The serve daemon's run op
# ---------------------------------------------------------------------------


def _daemon(tmp_path, **kwargs):
    from repro.serve.daemon import ServeConfig, SpecServer

    src = tmp_path / "prog"
    src.mkdir(exist_ok=True)
    (src / "Power.mod").write_text(POWER)
    config = ServeConfig(
        dir=str(src),
        socket_path=str(tmp_path / "serve.sock"),
        cache_dir=str(tmp_path / "cache"),
        warm_pool=False,
        **kwargs,
    )
    return SpecServer(config)


def _request(server, doc):
    from repro.serve import protocol

    return server.handle_request(protocol.parse_request(json.dumps(doc)))


class TestServeRun:
    def test_run_climbs_and_promotes(self, tmp_path):
        server = _daemon(tmp_path, tier_hot=2)
        try:
            doc = {
                "op": "run", "goal": "power",
                "static_args": {"n": 5}, "dynamic_args": [2],
            }
            first = _request(server, doc)
            second = _request(server, doc)
            assert first["ok"] and second["ok"]
            assert first["value"] == second["value"] == 32
            assert (first["tier"], second["tier"]) == (1, 2)
            assert second["origin"] == "emitted"
            assert second["seconds"] >= 0
            snap = server.obs.metrics.snapshot()["counters"]
            assert snap["serve.runs"] == 2
        finally:
            server.close()

    def test_run_value_encodes_tuples_as_json(self, tmp_path):
        from repro.serve.daemon import ServeConfig, SpecServer

        src = tmp_path / "prog"
        src.mkdir()
        (src / "M.mod").write_text(
            "module M where\n\n"
            "rep n x = if n == 0 then nil else x : rep (n - 1) x\n"
        )
        server = SpecServer(ServeConfig(
            dir=str(src),
            socket_path=str(tmp_path / "serve.sock"),
            cache_dir=str(tmp_path / "cache"),
            warm_pool=False,
        ))
        try:
            response = _request(server, {
                "op": "run", "goal": "rep",
                "static_args": {"n": 3}, "dynamic_args": [7],
            })
            assert response["ok"]
            assert response["value"] == [7, 7, 7]
        finally:
            server.close()

    def test_run_failure_is_an_error_response(self, tmp_path):
        server = _daemon(tmp_path)
        try:
            response = _request(server, {
                "op": "run", "goal": "nosuch", "dynamic_args": [],
            })
            assert not response["ok"]
            assert response["error"]["code"] == "error"
        finally:
            server.close()

    def test_warm_specialise_hits_promote_under_tier_hot(self, tmp_path):
        server = _daemon(tmp_path, tier_hot=2)
        try:
            doc = {"op": "specialise", "goal": "power",
                   "static_args": {"n": 4}}
            assert _request(server, doc)["served"] == "cold"
            assert _request(server, doc)["served"] == "warm"
            assert _request(server, doc)["served"] == "warm"
            snap = server.obs.metrics.snapshot()["counters"]
            assert snap["tier.promotions"] == 1
        finally:
            server.close()

    def test_specialise_never_promotes_without_tier_hot(self, tmp_path):
        server = _daemon(tmp_path)
        try:
            doc = {"op": "specialise", "goal": "power",
                   "static_args": {"n": 4}}
            for _ in range(4):
                _request(server, doc)
            snap = server.obs.metrics.snapshot()["counters"]
            assert not any(k.startswith("tier.") for k in snap)
        finally:
            server.close()

    def test_config_rejects_bad_tier_hot(self, tmp_path):
        from repro.serve.daemon import ServeConfig

        with pytest.raises(ValueError):
            ServeConfig(dir=str(tmp_path), tier_hot=0)


class TestProtocolRun:
    def test_parse_converts_nested_dynamic_args(self):
        from repro.serve import protocol

        doc = protocol.parse_request(json.dumps({
            "op": "run", "goal": "g",
            "static_args": {"xs": [1, [2, 3]]},
            "dynamic_args": [[4, 5], 6],
        }))
        assert doc["static_args"] == {"xs": (1, (2, 3))}
        assert doc["dynamic_args"] == [(4, 5), 6]

    def test_parse_rejects_non_list_dynamic_args(self):
        from repro.serve import protocol

        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(json.dumps({
                "op": "run", "goal": "g", "dynamic_args": {"x": 1},
            }))

    def test_parse_requires_goal(self):
        from repro.serve import protocol

        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(json.dumps({"op": "run"}))

    def test_value_json_round_trip(self):
        from repro.serve.protocol import value_from_json, value_to_json

        value = (1, (2, (3,)), True, 0)
        assert value_from_json(value_to_json(value)) == value


# ---------------------------------------------------------------------------
# fsck over the tier-2 artifacts
# ---------------------------------------------------------------------------


class TestFsckTierArtifacts:
    def test_healthy_artifacts_pass(self, gp, tmp_path):
        options = SpecOptions(
            cache_dir=str(tmp_path), tier_policy=TierPolicy(hot_after=1)
        )
        TierLadder(gp, options=options).call("power", {"n": 3}, (2,))
        from repro.pipeline.faults import fsck_cache

        report = fsck_cache(ArtifactCache(str(tmp_path)))
        assert report.ok and not report.stale

    def test_stale_tag_quarantined_as_stale_not_corrupt(self, tmp_path):
        from repro.pipeline.faults import EXIT_CORRUPT, fsck_cache

        store = ArtifactCache(str(tmp_path))
        record = {
            "schema": TIER2_SCHEMA, "tag": "foreignpython-00",
            "entry": "f", "entry_py": "f", "dynamic_params": [],
            "code": compile("1", "<t>", "eval"),
        }
        store.put_bytes("2" * 64, CODE_KIND, marshal.dumps(record))
        report = fsck_cache(store)
        assert not report.ok
        assert report.exit_code == EXIT_CORRUPT
        assert not report.quarantined  # stale, not corrupt
        names = [name for name, _ in report.stale]
        assert names == ["2" * 64 + "." + CODE_KIND]
        assert "stale code artifact" in report.stale[0][1]
        assert not store.has("2" * 64, CODE_KIND)  # quarantined anyway

    def test_headerless_resid_py_is_stale(self, tmp_path):
        from repro.pipeline.faults import fsck_cache

        store = ArtifactCache(str(tmp_path))
        store.put_text("3" * 64, RESID_PY_KIND, "x = 1\n")
        report = fsck_cache(store)
        assert not report.ok
        assert ["3" * 64 + "." + RESID_PY_KIND] == [
            n for n, _ in report.stale
        ]
        assert "tier-2 header" in report.stale[0][1]

    def test_syntactically_broken_resid_py_is_corrupt(self, tmp_path):
        from repro.pipeline.faults import fsck_cache

        store = ArtifactCache(str(tmp_path))
        store.put_text("4" * 64, RESID_PY_KIND, "def broken(:\n")
        report = fsck_cache(store)
        reasons = dict(report.quarantined)
        name = "4" * 64 + "." + RESID_PY_KIND
        assert "does not compile" in reasons[name]

    def test_render_and_dict_include_stale(self, tmp_path):
        from repro.pipeline.faults import fsck_cache

        store = ArtifactCache(str(tmp_path))
        store.put_text("5" * 64, RESID_PY_KIND, "x = 1\n")
        report = fsck_cache(store)
        assert "stale" in report.render()
        doc = report.as_dict()
        assert doc["stale"] and doc["exit_code"] == 6


# ---------------------------------------------------------------------------
# Satellites: the decode memo and the RTCG LRU metrics
# ---------------------------------------------------------------------------


class TestDecodeMemo:
    def test_repeat_decodes_hit_the_memo(self, gp):
        from repro.genext.engine import specialise
        from repro.speccache import decode_result, encode_result

        result = specialise(gp, "power", {"n": 3})
        payload = encode_result(result)
        obs = Obs()
        first = decode_result(payload, obs=obs)
        second = decode_result(payload, obs=obs)
        c = _counters(obs)
        assert c["speccache.decode_misses"] == 1
        assert c["speccache.decode_hits"] == 1
        # Decoded programs are shared, results are fresh wrappers.
        assert first.program is second.program
        assert first.run(2) == second.run(2) == 8

    def test_distinct_payloads_miss(self, gp):
        from repro.genext.engine import specialise
        from repro.speccache import decode_result, encode_result

        obs = Obs()
        for n in (2, 3):
            result = specialise(gp, "power", {"n": n})
            decode_result(encode_result(result), obs=obs)
        c = _counters(obs)
        assert c["speccache.decode_misses"] == 2
        assert "speccache.decode_hits" not in c


class TestRtcgLruMetrics:
    def test_evictions_counted_and_length_gauged(self, gp):
        import repro.backend.rtcg as rtcg

        rtcg.clear_lru()
        rtcg.configure_lru(2)
        try:
            obs = Obs()
            for n in (2, 3, 4):
                rtcg.generate(gp, "power", {"n": n}, obs=obs)
            snap = obs.metrics.snapshot()
            assert snap["counters"]["rtcg.lru_evictions"] == 1
            assert snap["gauges"]["rtcg.lru_len"] == 2
            assert rtcg.lru_len() == 2
        finally:
            rtcg.configure_lru(128)
            rtcg.clear_lru()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    @pytest.fixture
    def prog_dir(self, tmp_path):
        d = tmp_path / "prog"
        d.mkdir()
        (d / "Power.mod").write_text(POWER)
        return str(d)

    def test_run_tiers_backend_promotes(self, prog_dir, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        rc = main([
            "run", prog_dir, "power", "2", "--backend", "tiers",
            "--static", "n=5", "--cache-dir", cache,
            "--tier-hot", "2", "--repeat", "3",
        ])
        assert rc == 0
        out, err = capsys.readouterr()
        assert out.strip() == "32"
        assert "tier 2" in err

    def test_run_compiled_backend_loads_persisted_artifact(
        self, prog_dir, tmp_path, capsys
    ):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        args = [
            "run", prog_dir, "power", "2", "--backend", "compiled",
            "--static", "n=5", "--cache-dir", cache,
        ]
        assert main(args) == 0
        capsys.readouterr()
        clear_tiers()  # fresh process stand-in
        assert main(args) == 0
        out, err = capsys.readouterr()
        assert out.strip() == "32"
        assert "(code)" in err

    def test_run_interp_rejects_static(self, prog_dir):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", prog_dir, "power", "2", "--static", "n=5"])

    def test_run_interp_unchanged(self, prog_dir, capsys):
        from repro.cli import main

        assert main(["run", prog_dir, "power", "3", "2"]) == 0
        assert capsys.readouterr().out.strip() == "8"
