"""The runtime's resource guards: interpreter ``fuel``, the
``deep_recursion`` stack guard, the ``max_versions`` polyvariance bound,
and the wall-clock specialisation deadline (``SpecTimeout``).  Only the
happy paths were covered before; these exercise the exhaustion paths."""

import sys

import pytest

import repro
from repro.genext.runtime import SpecError, SpecTimeout, deep_recursion
from repro.interp.eval import EvalError
from repro.api import SpecOptions

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"

LOOP = """\
module Loop where

count n = if n == 0 then 0 else 1 + count (n - 1)
"""


# ---------------------------------------------------------------------------
# Interpreter fuel.
# ---------------------------------------------------------------------------


def test_fuel_exhaustion_raises_eval_error():
    linked = repro.load_program(LOOP)
    with pytest.raises(EvalError, match="out of fuel"):
        repro.run_program(linked, "count", [10_000], fuel=50)


def test_enough_fuel_succeeds():
    linked = repro.load_program(LOOP)
    assert repro.run_program(linked, "count", [5], fuel=1_000) == 5


def test_residual_run_respects_fuel():
    gp = repro.compile_genexts(POWER)
    result = repro.specialise(gp, "power", {"x": 2})
    # The residual loop still consumes fuel per step when interpreted.
    with pytest.raises(EvalError, match="out of fuel"):
        result.run(500, fuel=20)
    assert result.run(3) == 8


# ---------------------------------------------------------------------------
# The deep_recursion stack guard.
# ---------------------------------------------------------------------------


def test_deep_recursion_converts_recursion_error():
    with pytest.raises(SpecError, match="recursed too deeply"):
        with deep_recursion():
            raise RecursionError


def test_deep_recursion_raises_and_restores_the_limit():
    before = sys.getrecursionlimit()
    with deep_recursion(limit=before + 1000):
        assert sys.getrecursionlimit() == before + 1000
    assert sys.getrecursionlimit() == before

    # The limit is restored even when the guard fires.
    with pytest.raises(SpecError):
        with deep_recursion(limit=before + 1000):
            raise RecursionError
    assert sys.getrecursionlimit() == before


def test_deep_recursion_never_lowers_the_limit():
    before = sys.getrecursionlimit()
    with deep_recursion(limit=1):
        assert sys.getrecursionlimit() == before
    assert sys.getrecursionlimit() == before


def test_deep_recursion_passes_other_exceptions_through():
    with pytest.raises(ValueError):
        with deep_recursion():
            raise ValueError("not a recursion problem")


def test_real_runaway_static_unfolding_is_diagnosed():
    """An actually non-terminating static unfold hits the guard and
    comes back as a diagnostic SpecError, not a bare RecursionError."""

    from repro.genext.runtime import S, SBase

    gp = repro.compile_genexts(
        "module Diverge where\n\nspin n = spin (n + 1)\n"
    )
    original = sys.getrecursionlimit()
    # deep_recursion inside specialise raises the limit to 200_000 —
    # too slow for a test — so drive the generating extension directly
    # under a small guard: the spiral hits the ceiling fast.
    sys.setrecursionlimit(4_000)
    try:
        with pytest.raises(SpecError, match="recursed too deeply"):
            st = gp.new_state()
            with deep_recursion(limit=4_000):
                gp.mk("spin")(st, S, SBase(0))
    finally:
        sys.setrecursionlimit(original)


# ---------------------------------------------------------------------------
# The polyvariance bound.
# ---------------------------------------------------------------------------


def test_max_versions_guard_fires():
    gp = repro.compile_genexts(POWER)
    with pytest.raises(SpecError, match="specialised versions"):
        repro.specialise(gp, "power", {"x": 2}, SpecOptions(max_versions=0))


# ---------------------------------------------------------------------------
# The wall-clock deadline (SpecTimeout).
# ---------------------------------------------------------------------------


def test_spec_timeout_is_a_spec_error():
    assert issubclass(SpecTimeout, SpecError)


def test_expired_deadline_aborts_specialisation():
    gp = repro.compile_genexts(POWER)
    with pytest.raises(SpecTimeout, match="deadline"):
        repro.specialise(gp, "power", {"n": 30}, SpecOptions(timeout=0.0))


def test_generous_deadline_changes_nothing():
    gp = repro.compile_genexts(POWER)
    result = repro.specialise(gp, "power", {"n": 3}, SpecOptions(timeout=60.0))
    assert result.run(2) == 8


def test_check_deadline_direct():
    gp = repro.compile_genexts(POWER)
    st = gp.new_state(deadline=0.0)
    with pytest.raises(SpecTimeout):
        st.check_deadline()
    unlimited = gp.new_state()
    unlimited.check_deadline()  # no deadline: never raises
