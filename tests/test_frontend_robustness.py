"""Front-end robustness: arbitrary input must fail *cleanly*.

Whatever bytes arrive, the lexer/parser/loader may reject them only with
the documented error types — never with an internal exception."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.errors import LangError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expr, parse_program
from repro.modsys.program import load_program
from repro.types.infer import TypeError_, infer_program
from repro.bt.analysis import BTAError, analyse_program

_fragments = st.one_of(
    st.sampled_from(list("abcxyz ()[]{}<>=+-*/\\@:,.|&!'\"\n\t0123456789")),
    st.sampled_from(
        ["module ", "where ", "if ", "then ", "else ", "let ", "in ", "import "]
    ),
)
_textish = st.lists(_fragments, max_size=40).map("".join)


@given(_textish)
@settings(max_examples=300, deadline=None)
def test_lexer_total(text):
    try:
        tokenize(text)
    except LangError:
        pass


@given(_textish)
@settings(max_examples=300, deadline=None)
def test_parse_expr_total(text):
    try:
        parse_expr(text)
    except LangError:
        pass


@given(_textish)
@settings(max_examples=200, deadline=None)
def test_load_program_total(text):
    try:
        load_program("module M where\n\nf x = " + text.replace("\n", " ") + "\n")
    except LangError:
        pass


@given(_textish)
@settings(max_examples=100, deadline=None)
def test_full_front_end_total(text):
    """Anything that parses and links must either type check + analyse
    or fail with the documented error types."""
    source = "module M where\n\nf x y = " + text.replace("\n", " ") + "\n"
    try:
        linked = load_program(source)
    except LangError:
        return
    try:
        infer_program(linked)
    except TypeError_:
        return
    try:
        analyse_program(linked)
    except BTAError:
        pass
