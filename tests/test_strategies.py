"""The analysis-strategy matrix (docs/analyses.md): polyvariant
binding-time division and size-change unfolding as properties over the
pinned corpus, plus the v2 interface version table round-trip."""

import json
import os

import pytest

import repro
from repro.api import SpecOptions
from repro.bench.generators import dual_pattern_program, power_source
from repro.bt.analysis import analyse_program
from repro.bt.interface import (
    InterfaceStore,
    analysis_versions,
    interface_text,
    version_digest,
)
from repro.bt.scheme import ground_patterns, pattern_str
from repro.genext.batch import specialise_many
from repro.genext.engine import specialise
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(
    os.path.join(CORPUS_DIR, f)
    for f in os.listdir(CORPUS_DIR)
    if f.endswith(".json")
)


def _spec(source, goal, static, **strategies):
    opts = SpecOptions(**strategies)
    gp = repro.compile_genexts(source, opts)
    res = specialise(gp, goal, static, options=opts)
    return res, pretty_program(res.program)


# ---------------------------------------------------------------------------
# ground_patterns
# ---------------------------------------------------------------------------


class TestGroundPatterns:
    def _power_scheme(self):
        analysis = analyse_program(load_program(power_source()))
        return analysis.modules[0].schemes["power"]

    def test_patterns_are_distinct_ground_and_aligned(self):
        scheme = self._power_scheme()
        patterns = ground_patterns(scheme, 8)
        assert len(patterns) >= 2
        assert len(set(patterns)) == len(patterns)
        n_inputs = len(scheme.inputs())
        for p in patterns:
            assert len(p) == n_inputs
            assert set(pattern_str(p)) <= {"S", "D"}

    def test_deterministic_and_lexicographic(self):
        scheme = self._power_scheme()
        patterns = ground_patterns(scheme, 8)
        assert patterns == ground_patterns(scheme, 8)
        # Lexicographic with S < D.
        ranks = [
            tuple(0 if c == "S" else 1 for c in pattern_str(p))
            for p in patterns
        ]
        assert ranks == sorted(ranks)

    def test_cap_bounds_enumeration(self):
        scheme = self._power_scheme()
        assert len(ground_patterns(scheme, 1)) <= 1
        assert ground_patterns(scheme, 0) == ()


# ---------------------------------------------------------------------------
# Polyvariant division over the corpus
# ---------------------------------------------------------------------------


def test_poly_versions_exist_and_dispatch():
    source, goal, static, _dyn = dual_pattern_program(2, seed=3)
    analysis = analyse_program(load_program(source), division="poly")
    versions = {
        name: vs for m in analysis.modules for name, vs in m.versions.items()
    }
    assert any(len(vs) >= 2 for vs in versions.values())
    for vs in versions.values():
        for i, v in enumerate(vs):
            assert v.name == "%s__btv%d" % (v.base, v.index)
            assert v.index == i
    mono_res, mono_text = _spec(source, goal, static)
    poly_res, poly_text = _spec(source, goal, static, division="poly")
    assert poly_text == mono_text
    for d in (0, 1, 5):
        assert poly_res.run(d) == mono_res.run(d)


def test_conftest_corpus_poly_byte_identical(corpus_case):
    """division="poly" is a cogen artefact: on every conftest corpus
    program the residual must stay byte-identical to the monovariant
    one, and compute the same values."""
    force = frozenset(corpus_case.get("force_residual", ()))
    mono_res, mono_text = _spec(
        corpus_case["source"],
        corpus_case["goal"],
        corpus_case["static"],
        force_residual=force,
    )
    poly_res, poly_text = _spec(
        corpus_case["source"],
        corpus_case["goal"],
        corpus_case["static"],
        force_residual=force,
        division="poly",
    )
    assert poly_text == mono_text
    for vec in corpus_case["dyn_inputs"]:
        assert poly_res.run(*vec) == mono_res.run(*vec)


# ---------------------------------------------------------------------------
# The pinned 25-seed corpus under the strategy matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "corpus_file", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_pinned_corpus_strategies(corpus_file):
    """Every pinned seed: the polyvariant residual must match the
    golden (monovariant) text byte for byte; the size-change residual
    must compute the pinned values and come out byte-identical across
    batch widths 1 and 4."""
    with open(corpus_file) as f:
        doc = json.load(f)

    # Poly: byte-identical to the pinned golden text.
    poly_opts = SpecOptions(division="poly")
    poly_gp = repro.compile_genexts(doc["source"], poly_opts)
    for vi, valuation in enumerate(doc["static_variants"]):
        result = specialise(poly_gp, doc["goal"], dict(valuation),
                            options=poly_opts)
        assert pretty_program(result.program) == doc["residuals"][vi]

    # Size-change: pinned values, and width-independent bytes.
    sc_opts = SpecOptions(unfolding="size-change")
    sc_gp = repro.compile_genexts(doc["source"], sc_opts)
    requests = [
        (doc["goal"], dict(valuation)) for valuation in doc["static_variants"]
    ]
    texts_by_width = {}
    for width in (1, 4):
        batch = specialise_many(sc_gp, requests, sc_opts, jobs=width)
        assert not batch.failures
        texts = []
        for vi, result in enumerate(batch.results):
            texts.append(pretty_program(result.program))
            for vec, want in zip(doc["dyn_inputs"], doc["values"][vi]):
                got = result.run(*vec, fuel=600_000)
                listy = tuple(want) if isinstance(want, list) else want
                assert got == listy
        texts_by_width[width] = texts
    assert texts_by_width[1] == texts_by_width[4]


# ---------------------------------------------------------------------------
# Interface version table: v2 round-trip, v1 degradation, skew
# ---------------------------------------------------------------------------


class TestInterfaceVersions:
    def _poly_module(self):
        source, _goal, _static, _dyn = dual_pattern_program(2, seed=5)
        analysis = analyse_program(load_program(source), division="poly")
        for m in analysis.modules:
            if any(m.versions.values()):
                return m
        raise AssertionError("no module produced versions")

    def test_v2_round_trip_with_versions(self):
        m = self._poly_module()
        versions = analysis_versions(m)
        assert versions
        text = interface_text(m.name, m.schemes, versions=versions)
        store = InterfaceStore()
        iface = store.load_text(text)
        assert store.verify(iface) == []
        for name, patterns in versions.items():
            entries = iface.versions_of_def(name)
            assert tuple(p for p, _d in entries) == patterns
            for pattern, digest in entries:
                assert digest == version_digest(m.schemes[name], pattern)
        # Re-serialising the parsed document is byte-stable.
        assert interface_text(m.name, iface.schemes, versions=versions) == text

    def test_v1_drops_the_version_table(self):
        m = self._poly_module()
        versions = analysis_versions(m)
        text = interface_text(m.name, m.schemes, format=1, versions=versions)
        iface = InterfaceStore().load_text(text)
        assert iface.format == 1
        assert iface.versions is None
        assert iface.versions_of_def(next(iter(versions))) == ()

    def test_monovariant_file_is_unchanged_by_the_parameter(self):
        m = self._poly_module()
        assert interface_text(m.name, m.schemes) == interface_text(
            m.name, m.schemes, versions={}
        )

    def test_version_digest_skew_detected(self):
        m = self._poly_module()
        versions = analysis_versions(m)
        text = interface_text(m.name, m.schemes, versions=versions)
        doc = json.loads(text)
        name = next(iter(doc["versions"]))
        doc["versions"][name][0]["digest"] = "0" * 64
        store = InterfaceStore()
        iface = store.load_text(json.dumps(doc))
        problems = store.verify(iface)
        assert any(rule == "version_digest_skew" for rule, _n, _m in problems)

    def test_unknown_scheme_in_versions_rejected_at_serialise(self):
        from repro.bt.interface import InterfaceError

        m = self._poly_module()
        with pytest.raises(InterfaceError):
            interface_text(m.name, m.schemes, versions={"ghost": ("SD",)})
