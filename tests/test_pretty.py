"""Pretty-printer tests: output re-parses to the same AST.

Includes a hypothesis property over randomly generated expressions.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.ast import App, Call, If, Lam, Lit, Prim, Var
from repro.lang.parser import parse_expr, parse_module
from repro.lang.pretty import pretty_def, pretty_expr, pretty_module
from repro.lang.prims import PRIMS


def roundtrip(expr):
    return parse_expr(pretty_expr(expr))


def test_literals():
    assert pretty_expr(Lit(5)) == "5"
    assert pretty_expr(Lit(True)) == "true"
    assert pretty_expr(Lit(False)) == "false"
    assert pretty_expr(Lit(())) == "nil"


def test_operator_precedence_minimal_parens():
    e = parse_expr("1 + 2 * 3")
    assert pretty_expr(e) == "1 + 2 * 3"
    e = parse_expr("(1 + 2) * 3")
    assert pretty_expr(e) == "(1 + 2) * 3"


def test_left_associative_chains_need_no_parens():
    e = parse_expr("5 - 2 - 1")
    assert pretty_expr(e) == "5 - 2 - 1"
    assert roundtrip(e) == e


def test_right_operand_of_minus_parenthesised():
    e = Prim("-", (Lit(5), Prim("-", (Lit(2), Lit(1)))))
    assert pretty_expr(e) == "5 - (2 - 1)"
    assert roundtrip(e) == e


def test_cons_chain():
    e = parse_expr("1 : 2 : nil")
    assert pretty_expr(e) == "1 : 2 : nil"
    assert roundtrip(e) == e


def test_call_arguments_are_atomised():
    e = Call("f", (Prim("+", (Var("x"), Lit(1))), Var("y")))
    assert pretty_expr(e) == "f (x + 1) y"
    assert roundtrip(e) == e


def test_nested_call_argument():
    e = Call("f", (Call("g", (Var("x"),)),))
    assert pretty_expr(e) == "f (g x)"
    assert roundtrip(e) == e


def test_zero_arg_call_prints_bare():
    # Re-parsing gives Var, which validate re-resolves; printing is the
    # inverse of the *resolved* form only up to that normalisation.
    assert pretty_expr(Call("c", ())) == "c"


def test_lambda_and_app():
    e = parse_expr("(\\x -> x + 1) @ y")
    assert roundtrip(e) == e


def test_if_inside_operator_needs_parens():
    e = Prim("+", (If(Var("c"), Lit(1), Lit(2)), Lit(3)))
    assert pretty_expr(e) == "(if c then 1 else 2) + 3"
    assert roundtrip(e) == e


def test_def_and_module_roundtrip():
    source = (
        "module M where\n"
        "import A\n"
        "\n"
        "f x y = if x == 0 then y else f (x - 1) (y + 1)\n"
    )
    m = parse_module(source)
    assert parse_module(pretty_module(m)) == m


def test_pretty_def_zero_params():
    m = parse_module("module M where\n\nc = 1 + 2\n")
    assert pretty_def(m.defs[0]) == "c = 1 + 2"


# -- property-based round-trip -------------------------------------------------

_names = st.sampled_from(["x", "y", "z", "acc", "n0"])
_funcs = st.sampled_from(["f", "g", "helper"])
_infix = [p.name for p in PRIMS.values() if p.infix]
_prefix = [p.name for p in PRIMS.values() if not p.infix]


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=99).map(Lit),
        st.booleans().map(Lit),
        st.just(Lit(())),
        _names.map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(_infix), children, children).map(
                lambda t: Prim(t[0], (t[1], t[2]))
            ),
            st.tuples(st.sampled_from(_prefix), children).map(
                lambda t: Prim(t[0], (t[1],))
                if PRIMS[t[0]].arity == 1
                else Prim(t[0], (t[1], t[1]))
            ),
            st.tuples(children, children, children).map(lambda t: If(*t)),
            st.tuples(_funcs, st.lists(children, min_size=1, max_size=3)).map(
                lambda t: Call(t[0], tuple(t[1]))
            ),
            st.tuples(_names, children).map(lambda t: Lam(t[0], t[1])),
            st.tuples(children, children).map(lambda t: App(t[0], t[1])),
        )

    return st.recursive(leaves, extend, max_leaves=25)


@given(_exprs())
@settings(max_examples=300, deadline=None)
def test_pretty_parse_roundtrip_property(expr):
    text = pretty_expr(expr)
    assert parse_expr(text) == expr
