"""The observability layer: tracer spans, metrics registry, event bus,
profiler, trace determinism across pool widths, and the CLI sinks."""

import json
import os

import pytest

from repro.api import BuildOptions, SpecOptions
from repro.bench.generators import wide_program
from repro.obs import Obs
from repro.obs.bus import EventBus
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.schema import (
    REPORT_SCHEMA,
    validate_file,
    validate_metrics,
    validate_report,
    validate_trace,
)
from repro.obs.trace import NULL_TRACER, TRACE_SCHEMA, Tracer
from repro.pipeline import Fault, FaultPlan, FaultPolicy, build_dir
from repro.pipeline.build import BuildEngine

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"
MAIN = "module Main where\nimport Power\n\ncube y = power 3 y\n"


def _write_two_modules(path):
    (path / "Power.mod").write_text(POWER)
    (path / "Main.mod").write_text(MAIN)


# ---------------------------------------------------------------------------
# Tracer.
# ---------------------------------------------------------------------------


def test_spans_nest_and_record_parent():
    tracer = Tracer()
    with tracer.span("outer", cat="build"):
        with tracer.span("inner", cat="build", detail=7):
            pass
    names = tracer.span_names()
    assert names == ["inner", "outer"]
    inner = next(e for e in tracer.events if e["name"] == "inner")
    outer = next(e for e in tracer.events if e["name"] == "outer")
    assert inner["args"]["parent"] == "outer"
    assert inner["args"]["detail"] == 7
    assert "parent" not in outer["args"]
    # The child is contained in the parent's [ts, ts+dur] window.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0


def test_span_note_adds_args():
    tracer = Tracer()
    with tracer.span("pump") as span:
        span.note(drained=3)
    (event,) = [e for e in tracer.events if e["ph"] == "X"]
    assert event["args"]["drained"] == 3


def test_trace_document_is_schema_valid(tmp_path):
    tracer = Tracer()
    with tracer.span("build"):
        tracer.instant("mark", note="hello")
    doc = tracer.to_chrome()
    assert validate_trace(doc) == []
    assert doc["otherData"]["schema"] == TRACE_SCHEMA
    path = str(tmp_path / "t.json")
    tracer.export(path)
    kind, problems = validate_file(path)
    assert (kind, problems) == ("trace", [])


def test_null_tracer_records_nothing():
    with NULL_TRACER.span("anything", cat="x", k=1) as span:
        span.note(ignored=True)
    NULL_TRACER.instant("mark")
    assert list(NULL_TRACER.events) == []
    assert NULL_TRACER.span_names() == []


def test_add_events_merges_worker_batches():
    parent = Tracer()
    worker = Tracer()
    with worker.span("job:M"):
        pass
    parent.add_events(worker.events)
    assert parent.span_names() == ["job:M"]


def test_tracer_publishes_span_ends_on_bus():
    bus = EventBus()
    seen = []
    bus.on_span_end(lambda e: seen.append(e["name"]))
    tracer = Tracer(bus=bus)
    with tracer.span("a"):
        pass
    assert seen == ["a"]


# ---------------------------------------------------------------------------
# Metrics.
# ---------------------------------------------------------------------------


def test_metrics_snapshot_roundtrip():
    reg = MetricsRegistry()
    reg.counter("cache.hits").inc(3)
    reg.gauge("build.jobs").set(4)
    reg.timer("stage.analyse").add(0.25, count=2)
    doc = reg.snapshot()
    assert doc["schema"] == METRICS_SCHEMA
    assert validate_metrics(doc) == []
    clone = MetricsRegistry.from_snapshot(doc)
    assert clone.snapshot() == doc
    # And it survives a real JSON round trip byte-for-byte.
    assert MetricsRegistry.from_snapshot(
        json.loads(json.dumps(doc))
    ).snapshot() == doc


def test_metrics_merge_sums_counters_and_maxes_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c").inc(2)
    b.counter("c").inc(5)
    a.gauge("g").set(9)
    b.gauge("g").set(4)
    b.timer("t").add(1.0)
    a.merge(b)
    snap = a.snapshot()
    assert snap["counters"]["c"] == 7
    assert snap["gauges"]["g"] == 9
    assert snap["timers"]["t"]["count"] == 1


def test_metrics_export(tmp_path):
    reg = MetricsRegistry()
    reg.counter("x").inc()
    path = str(tmp_path / "m.json")
    reg.export(path)
    kind, problems = validate_file(path)
    assert (kind, problems) == ("metrics", [])


def test_registry_publishes_on_bus():
    bus = EventBus()
    seen = []
    bus.on_metric(lambda name, kind, value: seen.append((name, kind, value)))
    reg = MetricsRegistry(bus=bus)
    reg.counter("n").inc(2)
    assert ("n", "counter", 2) in seen


# ---------------------------------------------------------------------------
# The build pipeline under observation.
# ---------------------------------------------------------------------------


def test_build_populates_metrics_and_spans(tmp_path):
    _write_two_modules(tmp_path)
    obs = Obs.enabled()
    engine = BuildEngine(
        str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache")), obs=obs
    )
    result = engine.build()
    snap = result.stats.metrics.snapshot()
    assert snap["counters"]["cache.misses"] == 2
    assert snap["counters"]["modules.analysed"] == 2
    assert snap["gauges"]["build.modules"] == 2
    assert snap["gauges"]["build.waves"] == 2
    names = obs.tracer.span_names()
    assert "build" in names
    assert "wave[0]" in names and "wave[1]" in names
    assert "analyse:Power" in names and "cogen:Main" in names
    for stage in ("scan", "schedule", "cache", "analyse", "publish", "link"):
        assert "stage.%s" % stage in snap["timers"] or stage in (
            "link",
        ), "stage timer missing: %s" % stage
    assert validate_trace(obs.tracer.to_chrome()) == []


def test_cache_counts_its_own_io(tmp_path):
    _write_two_modules(tmp_path)
    result = build_dir(
        str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache"))
    )
    snap = result.stats.metrics.snapshot()
    assert snap["counters"]["cache.writes"] >= 4, "iface+genext per module"
    assert snap["counters"]["cache.write_bytes"] > 0
    warm = build_dir(
        str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache"))
    )
    snap = warm.stats.metrics.snapshot()
    assert snap["counters"]["cache.reads"] >= 4
    assert snap["counters"]["cache.read_bytes"] > 0


def test_cache_events_reach_the_bus(tmp_path):
    _write_two_modules(tmp_path)
    cache_dir = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache_dir))
    obs = Obs()
    seen = []
    obs.bus.subscribe(
        "cache.hit", lambda kind, payload: seen.append(payload["module"])
    )
    BuildEngine(str(tmp_path), BuildOptions(cache_dir=cache_dir), obs=obs).build()
    assert sorted(seen) == ["Main", "Power"]


@pytest.mark.parametrize("layers,width", [(3, 3)])
def test_trace_skeleton_deterministic_across_pool_widths(
    tmp_path, layers, width
):
    src = tmp_path / "src"
    src.mkdir()
    for name, text in wide_program(layers, width, defs_per_module=2, seed=3).items():
        (src / (name + ".mod")).write_text(text)
    skeletons = {}
    for jobs in (1, 4):
        obs = Obs.enabled()
        engine = BuildEngine(
            str(src),
            BuildOptions(cache_dir=str(tmp_path / ("cache%d" % jobs)), jobs=jobs),
            obs=obs,
        )
        engine.build()
        skeletons[jobs] = obs.tracer.span_names()
    assert skeletons[1] == skeletons[4], (
        "span multiset must not depend on pool width"
    )


def test_disabled_observation_is_the_default(tmp_path):
    _write_two_modules(tmp_path)
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache")))
    assert result.obs.tracer is NULL_TRACER
    assert list(result.obs.tracer.events) == []


def test_build_dir_writes_sinks(tmp_path):
    _write_two_modules(tmp_path)
    trace_path = str(tmp_path / "t.json")
    metrics_path = str(tmp_path / "m.json")
    build_dir(
        str(tmp_path),
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            jobs=2,
            trace_path=trace_path,
            metrics_path=metrics_path,
        ),
    )
    assert validate_file(trace_path) == ("trace", [])
    assert validate_file(metrics_path) == ("metrics", [])
    with open(trace_path) as f:
        doc = json.load(f)
    names = [e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert "job:Power" in names, "pool-worker spans must reach the trace"


# ---------------------------------------------------------------------------
# Fault counters: stats and the registry can never disagree (the
# double-count regression on the serial-degradation path).
# ---------------------------------------------------------------------------


def test_degradation_counts_once_in_stats_and_registry(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    for i in range(3):
        (src / ("A%d.mod" % i)).write_text(
            "module A%d where\n\nf%d n = n + %d\n" % (i, i, i)
        )
    plan = FaultPlan(
        faults=(Fault(module="A1", action="crash", times=1),),
        state_dir=str(tmp_path / "fstate"),
    )
    plan.install(str(tmp_path / "plan.json"))
    try:
        result = build_dir(
            str(src),
            BuildOptions(
                cache_dir=str(tmp_path / "cache"),
                jobs=2,
                policy=FaultPolicy(keep_going=True, sleep=lambda s: None),
            ),
        )
    finally:
        FaultPlan.uninstall()
    stats = result.stats
    assert stats.crashes == 1
    assert stats.degradations == 1
    assert stats.retries == 0
    # Recovery re-runs the wave serially; no module may be counted twice.
    assert sorted(stats.analysed) == ["A0", "A1", "A2"]
    assert len(stats.analysed) == len(set(stats.analysed))
    snap = stats.metrics.snapshot()
    assert snap["counters"]["faults.crashes"] == stats.crashes
    assert snap["counters"]["faults.degradations"] == stats.degradations
    assert snap["counters"]["modules.analysed"] == len(stats.analysed)
    d = stats.as_dict()
    assert d["crashes"] == snap["counters"]["faults.crashes"]


# ---------------------------------------------------------------------------
# The specialiser under observation.
# ---------------------------------------------------------------------------


def test_specialise_spans_and_spec_counters():
    import repro

    gp = repro.compile_genexts(POWER)
    obs = Obs.enabled()
    result = repro.specialise(gp, "power", {"n": 3}, obs=obs)
    assert result.run(2) == 8
    names = obs.tracer.span_names()
    assert "specialise" in names and "assemble" in names
    snap = obs.metrics.snapshot()
    assert snap["counters"]["spec.unfolds"] == 3


def test_specialise_mk_resid_spans():
    import repro

    gp = repro.compile_genexts(POWER, SpecOptions(force_residual={"power"}))
    obs = Obs.enabled()
    repro.specialise(gp, "power", {"n": 3}, obs=obs)
    names = obs.tracer.span_names()
    assert "pending-pump" in names
    assert any(n.startswith("mk_resid:power") for n in names)


# ---------------------------------------------------------------------------
# Profiler.
# ---------------------------------------------------------------------------


def test_profiler_attributes_time_per_module(tmp_path):
    _write_two_modules(tmp_path)
    obs = Obs.enabled()
    profiler = Profiler(obs.bus)
    BuildEngine(
        str(tmp_path),
        BuildOptions(cache_dir=str(tmp_path / "cache"), jobs=2),
        obs=obs,
    ).build()
    rows = profiler.top("job")
    assert any(name == "job:Power" for name, _, _ in rows)
    d = profiler.as_dict()
    assert "job:job:Power" in d["spans"] or "job:Power" in "".join(d["spans"])
    report = profiler.report()
    assert "Power" in report
    assert profiler.seconds("stage") >= 0.0


# ---------------------------------------------------------------------------
# CLI sinks and --json.
# ---------------------------------------------------------------------------


def test_cli_build_trace_and_metrics_files(tmp_path, capsys):
    from repro.cli import main

    _write_two_modules(tmp_path)
    trace = str(tmp_path / "t.json")
    metrics = str(tmp_path / "m.json")
    assert (
        main(["build", str(tmp_path), "--jobs", "2", "--trace", trace,
              "--metrics", metrics]) == 0
    )
    capsys.readouterr()
    assert validate_file(trace) == ("trace", [])
    assert validate_file(metrics) == ("metrics", [])


def test_cli_schema_validator_tool(tmp_path, capsys):
    from repro.cli import main
    from repro.obs import schema

    _write_two_modules(tmp_path)
    trace = str(tmp_path / "t.json")
    assert main(["build", str(tmp_path), "--trace", trace]) == 0
    capsys.readouterr()
    assert schema.main([trace]) == 0
    out = capsys.readouterr().out
    assert "valid trace" in out
    bad = str(tmp_path / "bad.json")
    with open(bad, "w") as f:
        f.write("{}")
    assert schema.main([bad]) == 1


def test_cli_build_json_report(tmp_path, capsys):
    from repro.cli import main

    _write_two_modules(tmp_path)
    assert main(["build", str(tmp_path), "--jobs", "2", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == REPORT_SCHEMA
    assert doc["command"] == "build"
    assert doc["exit_code"] == 0 and doc["ok"] is True
    assert validate_report(doc) == []
    assert doc["metrics"]["counters"]["modules.analysed"] == 2


def test_cli_specialize_alias_json(tmp_path, capsys):
    from repro.cli import main

    _write_two_modules(tmp_path)
    assert main(
        ["specialize", str(tmp_path), "cube", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "specialise"
    assert validate_report(doc) == []
    assert doc["report"]["entry"] == "cube"


def test_cli_fsck_json(tmp_path, capsys):
    from repro.cli import main

    _write_two_modules(tmp_path)
    assert main(["build", str(tmp_path)]) == 0
    capsys.readouterr()
    cache = os.path.join(str(tmp_path), ".mspec-cache")
    assert main(["fsck", cache, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "fsck"
    assert validate_report(doc) == []


def test_cli_help_lists_exit_codes(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert "exit codes" in out.lower()


# ---------------------------------------------------------------------------
# Well-known performance counters and the bench document schema.
# ---------------------------------------------------------------------------


def _metrics_doc(counters):
    return {
        "schema": METRICS_SCHEMA,
        "counters": counters,
        "gauges": {},
        "timers": {},
    }


def test_well_known_counters_must_be_nonnegative_integers():
    assert validate_metrics(_metrics_doc({"speccache.hits": 3})) == []
    problems = validate_metrics(_metrics_doc({"speccache.hits": 1.5}))
    assert any("well-known" in p for p in problems)
    problems = validate_metrics(_metrics_doc({"rtcg.lru_hits": -1}))
    assert any("well-known" in p for p in problems)


def test_arbitrary_counters_may_still_be_any_number():
    assert validate_metrics(_metrics_doc({"my.custom.rate": 1.5})) == []


def test_speccache_counters_flow_into_a_valid_snapshot(tmp_path):
    import repro

    obs = Obs()
    gp = repro.compile_genexts(POWER)
    options = SpecOptions(cache_dir=str(tmp_path / "cache"))
    repro.specialise(gp, "power", {"n": 3}, options, obs=obs)
    repro.specialise(gp, "power", {"n": 3}, options, obs=obs)
    snapshot = obs.metrics.snapshot()
    assert validate_metrics(snapshot) == []
    assert snapshot["counters"]["speccache.hits"] == 1
    assert snapshot["counters"]["speccache.writes"] == 1


def _bench_doc():
    from repro.obs.schema import BENCH_SPEC_THROUGHPUT_SCHEMA

    return {
        "schema": BENCH_SPEC_THROUGHPUT_SCHEMA,
        "cpus": 4,
        "workload": {"goal": "run"},
        "results": {"cache_warm_speedup": 12.5},
        "identical": True,
    }


def test_bench_spec_throughput_validator_accepts_the_shape():
    from repro.obs.schema import validate_bench_spec_throughput

    assert validate_bench_spec_throughput(_bench_doc()) == []


@pytest.mark.parametrize(
    "mutation, expected",
    [
        ({"schema": "nope"}, "schema"),
        ({"cpus": 0}, "cpus"),
        ({"workload": None}, "workload"),
        ({"identical": False}, "identical"),
        ({"results": {}}, "results"),
        ({"results": {"x": -1}}, "results"),
        ({"results": {"x": True}}, "results"),
    ],
)
def test_bench_spec_throughput_validator_rejects(mutation, expected):
    from repro.obs.schema import validate_bench_spec_throughput

    doc = dict(_bench_doc(), **mutation)
    problems = validate_bench_spec_throughput(doc)
    assert any(expected in p for p in problems), problems


def test_validate_file_recognises_bench_documents(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_bench_doc()))
    kind, problems = validate_file(str(path))
    assert kind == "bench"
    assert problems == []


def test_committed_bench_document_is_valid():
    path = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks",
        "BENCH_spec_throughput.json",
    )
    kind, problems = validate_file(path)
    assert kind == "bench"
    assert problems == []
