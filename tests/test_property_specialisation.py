"""Property-based testing of the headline correctness property:

    interp(source, static ++ dynamic) == interp(specialise(source, static), dynamic)

over randomly generated machine programs, random static/dynamic splits of
``power``, and randomly generated first-order arithmetic programs.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.bench.generators import machine_interpreter_source, power_source
from repro.interp import run_program
from repro.lang.prims import make_pair
from repro.modsys.program import load_program


@pytest.fixture(scope="module")
def machine_gp():
    return repro.compile_genexts(machine_interpreter_source())


@pytest.fixture(scope="module")
def machine_lp():
    return load_program(machine_interpreter_source())


@pytest.fixture(scope="module")
def power_gp():
    return repro.compile_genexts(power_source())


# -- machine programs -------------------------------------------------------

_instr = st.one_of(
    st.tuples(st.just(0), st.integers(0, 9)),
    st.tuples(st.just(1), st.integers(2, 3)),
    st.tuples(st.just(3), st.integers(0, 9)),
)


@st.composite
def _machine_programs(draw):
    base = draw(st.lists(_instr, min_size=0, max_size=8))
    n = len(base)
    # Optionally add forward jumps (always past the current point, so
    # every program terminates).
    out = []
    for i, ins in enumerate(base):
        if draw(st.booleans()) and i + 1 <= n:
            out.append((2, draw(st.integers(i + 1, n))))
        else:
            out.append(ins)
    return tuple(make_pair(op, arg) for op, arg in out)


@given(prog=_machine_programs(), acc=st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_machine_specialisation_correct(machine_gp, machine_lp, prog, acc):
    result = repro.specialise(machine_gp, "run", {"prog": prog})
    expected = run_program(machine_lp, "run", [prog, acc], fuel=10_000_000)
    assert result.run(acc) == expected


# -- power over all static/dynamic splits ------------------------------------


@given(n=st.integers(1, 12), x=st.integers(0, 9))
@settings(max_examples=40, deadline=None)
def test_power_static_n(power_gp, n, x):
    result = repro.specialise(power_gp, "power", {"n": n})
    assert result.run(x) == x ** n


@given(n=st.integers(1, 12), x=st.integers(0, 9))
@settings(max_examples=40, deadline=None)
def test_power_static_x(power_gp, n, x):
    result = repro.specialise(power_gp, "power", {"x": x})
    assert result.run(n) == x ** n


@given(n=st.integers(1, 10), x=st.integers(0, 9))
@settings(max_examples=25, deadline=None)
def test_power_fully_static_and_fully_dynamic(power_gp, n, x):
    static = repro.specialise(power_gp, "power", {"n": n, "x": x})
    dynamic = repro.specialise(power_gp, "power", {})
    assert static.run() == dynamic.run(n, x) == x ** n


# -- random first-order arithmetic definitions ---------------------------------


@st.composite
def _arith_bodies(draw, depth=0):
    """A random expression over static s and dynamic d."""
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(["s", "d", "1", "2", "7"]))
    op = draw(st.sampled_from(["+", "*", "-"]))
    left = draw(_arith_bodies(depth=depth + 1))
    right = draw(_arith_bodies(depth=depth + 1))
    if draw(st.booleans()):
        cond = draw(st.sampled_from(["s == 1", "d == 1", "s < d"]))
        return "(if %s then %s else %s)" % (cond, left, right)
    return "(%s %s %s)" % (left, op, right)


@given(body=_arith_bodies(), s=st.integers(0, 5), d=st.integers(0, 5))
@settings(max_examples=80, deadline=None)
def test_random_arithmetic_definitions(body, s, d):
    source = "module M where\n\nf s d = %s\n" % body
    lp = load_program(source)
    expected = run_program(lp, "f", [s, d])
    gp = repro.compile_genexts(source)
    result = repro.specialise(gp, "f", {"s": s})
    assert result.run(d) == expected
