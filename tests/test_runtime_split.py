"""Deep tests of mk_resid argument splitting and memoisation keys."""

import pytest

from repro.genext import runtime as rt
from repro.lang.ast import Call, Lit, Var
from repro.modsys.graph import ModuleGraph


def state():
    fn_info = {"f": rt.FnInfo("f", "A", ("a",), ("f",))}
    return rt.SpecState(fn_info, ModuleGraph({"A": ()}))


def resid(st, arg, build=None):
    return rt.mk_resid(
        st, rt.D, "f", (rt.D,), (arg,),
        lambda: pytest.fail("must not unfold"),
        build or (lambda args: rt.DCode(Lit(0))),
    )


def test_partially_static_list_splits_per_element():
    st = state()
    arg = rt.SList((rt.SBase(1), rt.DCode(Var("p")), rt.SBase(2),
                    rt.DCode(Var("q"))))
    out = resid(st, arg)
    # Dynamic leaves become arguments, in order.
    assert out.code.args == (Var("p"), Var("q"))


def test_rebuild_preserves_structure():
    st = state()
    seen = {}

    def build(args):
        seen["arg"] = args[0]
        return rt.DCode(Lit(0))

    arg = rt.SPair(rt.SBase(7), rt.DCode(Var("d")))
    resid(st, arg, build)
    st.run_pending()
    rebuilt = seen["arg"]
    assert isinstance(rebuilt, rt.SPair)
    assert rebuilt.fst == rt.SBase(7)
    assert isinstance(rebuilt.snd, rt.DCode)
    # The dynamic leaf was renamed to a fresh formal parameter.
    assert rebuilt.snd.code != Var("d")


def test_keys_distinguish_static_structure():
    st = state()
    a = resid(st, rt.SList((rt.SBase(1), rt.DCode(Var("x")))))
    b = resid(st, rt.SList((rt.DCode(Var("x")), rt.SBase(1))))
    assert a.code.func != b.code.func  # different static skeletons


def test_keys_ignore_dynamic_contents():
    st = state()
    a = resid(st, rt.SList((rt.SBase(1), rt.DCode(Var("x")))))
    b = resid(st, rt.SList((rt.SBase(1), rt.DCode(Call("g", ()))))
    )
    assert a.code.func == b.code.func
    assert st.stats.memo_hits == 1


def test_nested_closures_in_environments_split():
    st = state()

    def inner_helper(st_, arg, k):
        return arg

    inner = rt.SClo("y", inner_helper, (), (("k", rt.DCode(Var("kd"))),),
                    "inner", ("g",))

    def outer_helper(st_, arg, c):
        return arg

    outer = rt.SClo("x", outer_helper, (), (("c", inner),), "outer", ())
    out = resid(st, outer)
    # The dynamic leaf buried two closures deep surfaces as an argument.
    assert out.code.args == (Var("kd"),)


def test_closure_labels_key_specialisations():
    st = state()

    def helper(st_, arg):
        return arg

    a = resid(st, rt.SClo("x", helper, (), (), "lab1", ()))
    b = resid(st, rt.SClo("x", helper, (), (), "lab2", ()))
    assert a.code.func != b.code.func


def test_closure_binding_times_in_key():
    st = state()

    def helper(st_, t, arg):
        return arg

    a = resid(st, rt.SClo("x", helper, (rt.S,), (), "lab", ()))
    b = resid(st, rt.SClo("x", helper, (rt.D,), (), "lab", ()))
    assert a.code.func != b.code.func


def test_fresh_parameter_hints_come_from_fn_info():
    st = state()
    resid(st, rt.DCode(Var("whatever")))
    st.run_pending()
    (placement, d), = st.defs
    assert d.params[0].startswith("a_")  # hint 'a' from FnInfo params


def test_pair_of_pairs_key_roundtrip():
    st = state()
    v = rt.SPair(rt.SPair(rt.SBase(1), rt.SBase(2)), rt.SBase(3))
    a = resid(st, v)
    b = resid(st, v)
    assert a.code.func == b.code.func
    assert a.code.args == ()
