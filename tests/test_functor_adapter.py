"""Functor boundary adapters: actual results are re-coerced to the
assumed binding-time type."""

import pytest

import repro
from repro.bt.analysis import analyse_program
from repro.functor import make_functor
from repro.genext.cogen import cogen_program
from repro.genext.link import GenextProgram, load_genext
from repro.lang.parser import parse_program
from repro.modsys.program import load_program

POOL = """\
module Pool where

constf a b = 42
first a b = a
plus a b = a + b
"""

APPLYTWICE = """\
module App(op 2) where

use x y = op x y + op y x
"""


@pytest.fixture(scope="module")
def pool():
    return analyse_program(load_program(POOL))


def _gp(pool, actual):
    template = make_functor(parse_program(APPLYTWICE).modules[0])
    loaded, prefix = template.instantiate("I", {"op": actual}, pool.schemes)
    base = [load_genext(m) for m in cogen_program(pool)]
    return GenextProgram(base + [loaded]), prefix


def test_constant_result_is_lifted(pool):
    # constf returns a static 42 even on dynamic inputs; the functor
    # assumed the result is dynamic there, so the adapter must lift it.
    gp, prefix = _gp(pool, "constf")
    result = repro.specialise(gp, prefix + "use", {})
    assert result.run(1, 2) == 84
    text = repro.pretty_program(result.program)
    assert "42 + 42" in text  # computed statically, lifted into the code


def test_projection_result_is_lifted(pool):
    gp, prefix = _gp(pool, "first")
    result = repro.specialise(gp, prefix + "use", {"x": 10})
    # op x y = x (static 10); op y x = y (dynamic).
    assert result.run(5) == 15


def test_plain_function_unaffected(pool):
    gp, prefix = _gp(pool, "plus")
    result = repro.specialise(gp, prefix + "use", {})
    assert result.run(3, 4) == 14


def test_mixed_static_dynamic_through_adapter(pool):
    gp, prefix = _gp(pool, "plus")
    result = repro.specialise(gp, prefix + "use", {"x": 100})
    assert result.run(1) == 202
