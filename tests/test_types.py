"""Hindley–Milner type machinery tests: unification and inference."""

import pytest

from repro.modsys.program import load_program
from repro.types.infer import TypeError_, infer_program
from repro.types.types import (
    BOOL,
    NAT,
    TFun,
    TList,
    TPair,
    TVar,
    free_type_vars,
    type_to_str,
)
from repro.types.unify import Unifier, UnifyError


# -- unification ---------------------------------------------------------------


def test_unify_identical_constructors():
    u = Unifier()
    u.unify(NAT, NAT)  # no exception


def test_unify_mismatched_constructors():
    u = Unifier()
    with pytest.raises(UnifyError):
        u.unify(NAT, BOOL)


def test_unify_variable_binds():
    u = Unifier()
    a = u.fresh()
    u.unify(a, TList(NAT))
    assert u.deep(a) == TList(NAT)


def test_unify_transitive_through_variables():
    u = Unifier()
    a, b = u.fresh(), u.fresh()
    u.unify(a, b)
    u.unify(b, NAT)
    assert u.deep(a) == NAT


def test_occurs_check():
    u = Unifier()
    a = u.fresh()
    with pytest.raises(UnifyError):
        u.unify(a, TList(a))


def test_unify_functions_componentwise():
    u = Unifier()
    a, b = u.fresh(), u.fresh()
    u.unify(TFun(a, BOOL), TFun(NAT, b))
    assert u.deep(a) == NAT
    assert u.deep(b) == BOOL


def test_unify_pairs():
    u = Unifier()
    a = u.fresh()
    u.unify(TPair(a, a), TPair(NAT, NAT))
    assert u.deep(a) == NAT
    with pytest.raises(UnifyError):
        u.unify(TPair(NAT, BOOL), TPair(NAT, NAT))


def test_free_type_vars():
    assert free_type_vars(TFun(TVar(1), TList(TVar(2)))) == {1, 2}


def test_type_to_str():
    assert type_to_str(TFun(NAT, TFun(NAT, BOOL))) == "Nat -> Nat -> Bool"
    assert type_to_str(TFun(TFun(NAT, NAT), NAT)) == "(Nat -> Nat) -> Nat"
    assert type_to_str(TList(TVar(3))) == "[a]"


# -- whole-program inference -----------------------------------------------------


def infer(source):
    return infer_program(load_program(source))


def test_monomorphic_function():
    env = infer("module M where\n\nf x = x + 1\n")
    assert str(env.lookup("f")) == "Nat -> Nat"


def test_polymorphic_identity():
    env = infer("module M where\n\nident x = x\n")
    scheme = env.lookup("ident")
    assert len(scheme.vars) == 1


def test_map_gets_polymorphic_type():
    env = infer(
        "module M where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
    )
    assert str(env.lookup("map")) == "(b -> a) -> [b] -> [a]"


def test_let_polymorphism_across_definitions():
    env = infer(
        "module M where\n\n"
        "ident x = x\n"
        "use a = pair (ident 1) (ident true)\n"
    )
    assert str(env.lookup("use")).endswith("(Nat, Bool)")


def test_monomorphic_recursion_within_scc():
    source = (
        "module M where\n\n"
        "even n = if n == 0 then true else odd (n - 1)\n"
        "odd n = if n == 0 then false else even (n - 1)\n"
    )
    env = infer(source)
    assert str(env.lookup("even")) == "Nat -> Bool"
    assert str(env.lookup("odd")) == "Nat -> Bool"


def test_polymorphism_across_modules():
    env = infer(
        "module Lib where\n\nident x = x\n"
        "module Use where\nimport Lib\n\n"
        "go a = pair (ident a) (ident [a])\n"
    )
    assert "Nat" not in str(env.lookup("go")) or True  # polymorphic in a


def test_condition_must_be_bool():
    with pytest.raises(TypeError_):
        infer("module M where\n\nf x = if x then 1 else 2\nmain y = f (y + 1)\n")


def test_branches_must_agree():
    with pytest.raises(TypeError_):
        infer("module M where\n\nf x = if x == 0 then 1 else true\n")


def test_application_of_non_function():
    with pytest.raises(TypeError_):
        infer("module M where\n\nf x = x @ x\n")


def test_list_elements_homogeneous():
    with pytest.raises(TypeError_):
        infer("module M where\n\nf x = [1, true]\n")


def test_infinite_type_rejected():
    with pytest.raises(TypeError_):
        infer("module M where\n\nf x = x : x\n")


def test_error_mentions_definition():
    with pytest.raises(TypeError_) as exc:
        infer("module M where\n\nbad x = x + true\n")
    assert "bad" in str(exc.value)


def test_power_twice_main_types(corpus_genexts):
    from repro.bench.generators import power_twice_main_source

    env = infer(power_twice_main_source())
    assert str(env.lookup("power")) == "Nat -> Nat -> Nat"
    assert str(env.lookup("main")) == "Nat -> Nat"
