"""Canonical-renaming tests."""

import repro
from repro.lang.ast import Call, Def, Lam, Module, Prim, Program, Var
from repro.residual.normalise import normalise_program


def test_entry_becomes_fn0():
    p = Program(
        (
            Module(
                "M",
                (),
                (
                    Def("main", ("y",), Call("helper", (Var("y"),))),
                    Def("helper", ("z",), Var("z")),
                ),
            ),
        )
    )
    n = normalise_program(p, "main")
    defs = {d.name: d for m in n.modules for d in m.defs}
    assert set(defs) == {"fn0", "fn1"}
    assert defs["fn0"].body == Call("fn1", (Var("v0"),))


def test_variables_renamed_in_binding_order():
    p = Program(
        (
            Module(
                "M",
                (),
                (Def("f", ("a", "b"), Prim("+", (Var("b"), Var("a")))),),
            ),
        )
    )
    n = normalise_program(p, "f")
    d = n.modules[0].defs[0]
    assert d.params == ("v0", "v1")
    assert d.body == Prim("+", (Var("v1"), Var("v0")))


def test_lambda_binders_renamed():
    p = Program(
        (Module("M", (), (Def("f", ("x",), Lam("y", Var("y"))),)),)
    )
    n = normalise_program(p, "f")
    assert n.modules[0].defs[0].body == Lam("v1", Var("v1"))


def test_unreachable_definitions_dropped():
    p = Program(
        (
            Module(
                "M",
                (),
                (
                    Def("main", (), Var("main") if False else Call("a", ())),
                    Def("a", (), Call("a", ())),
                    Def("orphan", (), Call("a", ())),
                ),
            ),
        )
    )
    n = normalise_program(p, "main")
    names = [d.name for m in n.modules for d in m.defs]
    assert len(names) == 2  # orphan dropped


def test_alpha_equivalent_programs_normalise_equal():
    def variant(fn, var):
        return Program(
            (
                Module(
                    "M",
                    (),
                    (
                        Def("go", (var,), Call(fn, (Var(var),))),
                        Def(fn, ("q",), Prim("+", (Var("q"), Var("q")))),
                    ),
                ),
            )
        )

    a = variant("helper_1", "x")
    b = variant("zz_9", "argle")
    assert normalise_program(a, "go") == normalise_program(b, "go")


def test_imports_recomputed():
    p = Program(
        (
            Module("A", (), (Def("f", ("x",), Var("x")),)),
            Module("B", ("A",), (Def("g", ("y",), Call("f", (Var("y"),))),)),
        )
    )
    n = normalise_program(p, "g")
    by_name = {m.name: m for m in n.modules}
    assert by_name["B"].imports == ("A",)
    assert by_name["A"].imports == ()
