"""Exhaustive static/dynamic divisions.

For every corpus program, specialise under *every* subset of its
parameters as static (the corpus supplies one concrete value per
parameter) and differential-test against direct interpretation.  This
covers monovariant corners the hand-picked divisions miss — including
the all-static division (specialisation = evaluation) and the
all-dynamic one (specialisation = a renamed copy).
"""

import itertools

import pytest

import repro
from repro.genext.runtime import SpecError
from repro.interp import run_program
from repro.modsys.program import load_program
from tests.conftest import CORPUS
from repro.api import SpecOptions


def _full_values(case, linked):
    """One concrete value per parameter of the goal."""
    _, d = linked.find_def(case["goal"])
    values = {}
    dyn_iter = iter(case["dyn_inputs"][0])
    for p in d.params:
        if p in case["static"]:
            values[p] = case["static"][p]
        else:
            values[p] = next(dyn_iter)
    return d.params, values


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c["name"])
def test_all_divisions(case, corpus_genexts):
    linked = load_program(case["source"])
    params, values = _full_values(case, linked)
    if len(params) > 3:
        pytest.skip("too many divisions")
    gp = corpus_genexts[case["name"]]
    expected = run_program(
        linked, case["goal"], [values[p] for p in params], fuel=10_000_000
    )
    for k in range(len(params) + 1):
        for static_set in itertools.combinations(params, k):
            static = {p: values[p] for p in static_set}
            dynamic = [values[p] for p in params if p not in static_set]
            try:
                result = repro.specialise(gp, case["goal"], static, SpecOptions(max_versions=60))
            except SpecError:
                # Some divisions are rejected up front (a dynamic
                # parameter whose binding-time type has a static
                # component), and some diverge by design (unbounded
                # static variation, e.g. a program counter under a
                # dynamic halt test) and trip the polyvariance guard.
                continue
            assert result.run(*dynamic) == expected, (
                "division static=%r of %s disagrees" % (static_set, case["name"])
            )
