"""The parallel incremental build engine: cache hits/misses, dirty
cones, early cutoff, artifact publication, linking, CLI."""

import os

import pytest

import repro
from repro.bench.generators import layered_program
from repro.genext.engine import specialise
from repro.pipeline import ArtifactCache, BuildEngine, build_dir
from repro.pipeline.build import GENEXT_KIND, IFACE_KIND, CODE_KIND
from repro.api import BuildOptions

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"
MAIN = "module Main where\nimport Power\n\ncube y = power 3 y\n"


def _write(path, name, text):
    with open(os.path.join(str(path), name + ".mod"), "w") as f:
        f.write(text)


def _layered(path, n=4, defs=2, seed=5):
    sources = layered_program(n, defs, seed=seed)
    for name, text in sources.items():
        _write(path, name, text)
    return sources


def test_cold_then_warm_noop(tmp_path):
    _layered(tmp_path)
    cache = str(tmp_path / "cache")
    cold = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert cold.analysed == ["M0", "M1", "M2", "M3"]
    assert cold.cached == []
    warm = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert warm.analysed == [], "warm no-op rebuild re-analyses nothing"
    assert warm.cached == ["M0", "M1", "M2", "M3"]
    assert [m.source for m in warm.genexts] == [m.source for m in cold.genexts]
    assert warm.keys == cold.keys


def test_fresh_checkout_hits_shared_cache(tmp_path):
    """A second checkout of the same sources (different directory, new
    mtimes) gets full cache hits — content addressing, not timestamps."""
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    sources = _layered(a)
    for name, text in sources.items():
        _write(b, name, text)
    cache = str(tmp_path / "cache")
    build_dir(str(a), BuildOptions(cache_dir=cache))
    again = build_dir(str(b), BuildOptions(cache_dir=cache))
    assert again.analysed == []
    assert len(again.cached) == len(sources)


def test_leaf_edit_rebuilds_exactly_the_leaf(tmp_path):
    sources = _layered(tmp_path)
    cache = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    _write(tmp_path, "M3", sources["M3"] + "extra n x = x + n\n")
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert result.analysed == ["M3"]
    assert sorted(result.cached) == ["M0", "M1", "M2"]


def test_root_edit_rebuilds_dirty_cone_with_early_cutoff(tmp_path):
    sources = _layered(tmp_path)
    cache = str(tmp_path / "cache")
    build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    # A comment-only edit: M0's interface is unchanged, so the cone
    # stops at M0 itself — and M0 itself is rebuilt per-definition in
    # the parent (every SCC record is reused verbatim).
    _write(tmp_path, "M0", "-- tweaked\n" + sources["M0"])
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert result.analysed == []
    assert result.incremental == ["M0"]
    assert sorted(result.cached) == ["M1", "M2", "M3"]
    # A structural edit (new definition): M0 falls back to whole-module
    # analysis, but no importer references the new def, so every
    # dependent module's def-level key still hits.
    _write(tmp_path, "M0", sources["M0"] + "m0_new n x = x\n")
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert result.analysed == ["M0"]
    assert sorted(result.cached) == ["M1", "M2", "M3"]


def test_force_residual_is_part_of_the_key(tmp_path):
    _write(tmp_path, "Power", POWER)
    cache = str(tmp_path / "cache")
    plain = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    forced = build_dir(
        str(tmp_path),
        BuildOptions(cache_dir=cache, force_residual=frozenset(["power"])),
    )
    assert forced.cached == [], "different options, different key"
    assert forced.analysed + forced.incremental == ["Power"]
    assert forced.keys["Power"] != plain.keys["Power"]
    again = build_dir(str(tmp_path), BuildOptions(cache_dir=cache))
    assert again.analysed == [], "the plain entry is still cached"


def test_corrupt_cache_entry_is_rebuilt(tmp_path):
    _write(tmp_path, "Power", POWER)
    cache_dir = str(tmp_path / "cache")
    first = build_dir(str(tmp_path), BuildOptions(cache_dir=cache_dir))
    cache = ArtifactCache(cache_dir)
    key = first.keys["Power"]
    cache.put_text(key, IFACE_KIND, '{"torn":')
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=cache_dir))
    assert result.cached == [], "corrupt entry treated as a miss"
    assert result.analysed + result.incremental == ["Power"]
    assert cache.get_text(key, IFACE_KIND).startswith("{")
    # With the defs record intact the repair itself was incremental;
    # its interface must have been rebuilt byte-identically.
    assert cache.get_text(key, IFACE_KIND) is not None


def test_published_artifacts_and_no_temp_droppings(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    _write(src, "Power", POWER)
    _write(src, "Main", MAIN)
    iface_dir = str(tmp_path / "iface")
    out_dir = str(tmp_path / "out")
    build_dir(
        str(src),
        BuildOptions(
            cache_dir=str(tmp_path / "cache"),
            iface_dir=iface_dir,
            out_dir=out_dir,
        ),
    )
    assert sorted(os.listdir(iface_dir)) == [
        "Main.bti",
        "Main.bti.key",
        "Power.bti",
        "Power.bti.key",
    ]
    assert sorted(os.listdir(out_dir)) == ["Main.genext.py", "Power.genext.py"]
    for root, _, files in os.walk(str(tmp_path)):
        for f in files:
            assert not f.startswith(".tmp."), "temp file leaked: %s" % f

    # The published interfaces satisfy the classic manager: analyze
    # after build is a no-op.
    from repro.bt.interface import InterfaceManager

    linked = repro.load_program_dir(str(src))
    manager = InterfaceManager(str(src), iface_dir)
    _, analysed = manager.analyse(linked)
    assert analysed == []


def test_build_matches_classic_pipeline_and_specialises(tmp_path):
    _write(tmp_path, "Power", POWER)
    _write(tmp_path, "Main", MAIN)
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache")))
    classic = repro.cogen_program(
        repro.analyse_program(repro.load_program_dir(str(tmp_path)))
    )
    assert {m.name: m.source for m in result.genexts} == {
        m.name: m.source for m in classic
    }
    gp = result.link()
    spec = specialise(gp, "cube", {})
    assert spec.run(3) == 27

    # Relinking warm pulls the compiled code objects from the cache.
    cache = ArtifactCache(str(tmp_path / "cache"))
    assert cache.has(result.keys["Power"], CODE_KIND)
    warm = build_dir(str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache")))
    assert specialise(warm.link(), "cube", {}).run(2) == 8


def test_stats_instrumentation(tmp_path):
    _layered(tmp_path)
    result = build_dir(str(tmp_path), BuildOptions(cache_dir=str(tmp_path / "cache"), jobs=1))
    stats = result.stats
    assert stats.modules == 4
    assert stats.wave_widths == (1, 1, 1, 1)
    assert len(stats.analysed) == 4 and stats.cached == []
    for stage in ("scan", "schedule", "cache", "analyse", "publish"):
        assert stage in stats.stage_seconds
    d = stats.as_dict()
    assert d["n_analysed"] == 4 and d["jobs"] == 1
    assert d["total_seconds"] == pytest.approx(stats.total_seconds)
    report = stats.report()
    assert "4 module(s)" in report and "analyse" in report

    # And it round-trips through JSON (the benchmark emitter's contract).
    import json

    json.loads(json.dumps(d))


def test_bad_jobs_rejected(tmp_path):
    with pytest.raises(ValueError):
        BuildEngine(str(tmp_path), BuildOptions(jobs=0))


def test_cli_build(tmp_path, capsys):
    from repro.cli import main

    _write(tmp_path, "Power", POWER)
    _write(tmp_path, "Main", MAIN)
    assert main(["build", str(tmp_path), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "analysed" in out and "pipeline:" in out
    assert os.path.exists(os.path.join(str(tmp_path), "Power.bti"))
    assert os.path.exists(os.path.join(str(tmp_path), "Main.genext.py"))
    assert os.path.isdir(os.path.join(str(tmp_path), ".mspec-cache"))
    assert main(["build", str(tmp_path), "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "cached" in out and "analysed" not in out
