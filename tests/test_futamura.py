"""The first Futamura projection on the machine interpreter: compiled
residual programs, one function per reachable program point."""

import pytest

import repro
from repro.bench.generators import machine_interpreter_source, random_machine_program
from repro.interp import Interpreter, run_program
from repro.lang.prims import make_pair
from repro.modsys.program import load_program


@pytest.fixture(scope="module")
def machine():
    source = machine_interpreter_source()
    return repro.compile_genexts(source), load_program(source)


def compile_prog(machine, prog):
    gp, _ = machine
    return repro.specialise(gp, "run", {"prog": prog})


STRAIGHT = (make_pair(1, 2), make_pair(0, 10), make_pair(1, 3))


def test_straight_line_code_compiles_to_chain(machine):
    result = compile_prog(machine, STRAIGHT)
    # Program points 0..3 (3 instructions + halt) reachable linearly,
    # minus unfolded halting state: one residual function per point.
    assert result.stats["specialisations"] == len(STRAIGHT) + 1
    assert result.run(5) == (5 * 2 + 10) * 3


def test_no_interpreter_machinery_survives(machine):
    result = compile_prog(machine, STRAIGHT)
    text = repro.pretty_program(result.program)
    # Instruction dispatch, program indexing, and pairs are all gone.
    for leftover in ("fst", "snd", "head", "tail", "index", "size", "prog"):
        assert leftover not in text


def test_compiled_agrees_with_interpreted(machine):
    gp, linked = machine
    for seed in range(5):
        prog = random_machine_program(12, seed=seed)
        result = compile_prog(machine, prog)
        for acc in (0, 1, 2, 9):
            expected = run_program(linked, "run", [prog, acc], fuel=10_000_000)
            assert result.run(acc) == expected


def test_jump_targets_resolved_statically(machine):
    # 0: if acc == 0 jump 3;  1: acc += 1;  2: halt-at-3... plus 3: *2.
    prog = (
        make_pair(2, 2),
        make_pair(0, 1),
        make_pair(1, 2),
    )
    result = compile_prog(machine, prog)
    assert result.run(0) == 0 * 2  # jumps over the add
    assert result.run(3) == (3 + 1) * 2


def test_only_reachable_program_points_compiled(machine):
    # Instruction 1 is jumped over for acc == 0 but reachable otherwise;
    # compare with a program whose tail is unreachable.
    dead_tail = (
        make_pair(2, 3),  # if acc == 0 jump to halt... but acc dynamic
        make_pair(0, 1),
        make_pair(1, 2),
    )
    r = compile_prog(machine, dead_tail)
    reachable = r.stats["specialisations"]
    # All 4 program points reachable here (dynamic test keeps both arms).
    assert reachable == 4


def test_compiled_code_runs_in_fewer_steps(machine):
    gp, linked = machine
    result = compile_prog(machine, STRAIGHT)
    interp = Interpreter(linked)
    interp.call("run", [STRAIGHT, 5])
    compiled = Interpreter(result.linked)
    compiled.call(result.entry, [5])
    assert compiled.steps * 5 < interp.steps  # at least 5x fewer steps


def test_residual_is_in_machine_module(machine):
    result = compile_prog(machine, STRAIGHT)
    assert [m.name for m in result.program.modules] == ["Machine"]


def test_second_compilation_reuses_nothing_but_works(machine):
    r1 = compile_prog(machine, STRAIGHT)
    r2 = compile_prog(machine, STRAIGHT)
    assert r1.program == r2.program
