"""Additional coverage: smaller APIs and edge cases across subsystems."""

import pytest

import repro
from repro.bench.metrics import code_lines, time_call
from repro.bt.graph import ConstraintGraph, D_NODE
from repro.bt.scheme import param_own_names
from repro.genext import runtime as rt
from repro.lang.ast import (
    Lit,
    Var,
    count_nodes,
    def_size,
    module_size,
    program_size,
    walk,
)
from repro.lang.names import NameSupply, rename
from repro.lang.parser import parse_expr, parse_program
from repro.modsys.program import load_program


# -- lang.ast helpers ------------------------------------------------------------


def test_walk_preorder():
    e = parse_expr("1 + 2 * 3")
    kinds = [type(x).__name__ for x in walk(e)]
    assert kinds == ["Prim", "Lit", "Prim", "Lit", "Lit"]


def test_count_nodes():
    assert count_nodes(parse_expr("1 + 2")) == 3
    assert count_nodes(parse_expr("\\x -> x")) == 2


def test_size_metrics_compose():
    p = parse_program("module M where\nimport M2\n\nf x = x + 1\nmodule M2 where\n\ng = 1\n")
    m = p.modules[0]
    assert def_size(m.defs[0]) == 1 + 1 + 3
    assert module_size(m) == 1 + 1 + def_size(m.defs[0])
    assert program_size(p) == sum(module_size(x) for x in p.modules)


def test_lit_rejects_bad_values():
    with pytest.raises(ValueError):
        Lit(-1)
    with pytest.raises(ValueError):
        Lit("nope")
    with pytest.raises(ValueError):
        Lit((1, 2))


# -- names ------------------------------------------------------------------------


def test_rename_shadows_under_binders():
    e = parse_expr("x + (\\x -> x) @ x")
    out = rename(e, {"x": "y"})
    assert out == parse_expr("y + (\\x -> x) @ y")


def test_rename_empty_mapping_is_identity():
    e = parse_expr("x + 1")
    assert rename(e, {}) is e


def test_name_supply_is_per_prefix():
    s = NameSupply()
    assert s.fresh("a") == "a1"
    assert s.fresh("b") == "b1"
    assert s.fresh("a") == "a2"
    s.reset()
    assert s.fresh("a") == "a1"


# -- metrics -----------------------------------------------------------------------


def test_time_call_returns_result():
    seconds, value = time_call(lambda a: a * 2, 21)
    assert value == 42
    assert seconds >= 0


def test_code_lines_counts_code_only():
    assert code_lines("") == 0
    assert code_lines("\n\n-- c\n# c\nx = 1\n") == 1


# -- constraint graph context --------------------------------------------------------


def test_graph_context_records_reasons():
    g = ConstraintGraph()
    a, b = g.fresh(), g.fresh()
    g.set_context("because")
    g.edge(a, b)
    assert g.reason(a, b) == "because"
    assert g.reason(b, a) is None


def test_graph_first_reason_wins():
    g = ConstraintGraph()
    a, b = g.fresh(), g.fresh()
    g.set_context("first")
    g.edge(a, b)
    g.set_context("second")
    g.edge(a, b)
    assert g.reason(a, b) == "first"


def test_find_path():
    g = ConstraintGraph()
    a, b, c = g.fresh(), g.fresh(), g.fresh()
    g.edge(a, b)
    g.edge(b, c)
    assert g.find_path(a, c) == [(a, b), (b, c)]
    assert g.find_path(c, a) is None
    assert g.find_path(a, a) == []


def test_find_path_prefers_shortest():
    g = ConstraintGraph()
    a, b, c = g.fresh(), g.fresh(), g.fresh()
    g.edge(a, b)
    g.edge(b, c)
    g.edge(a, c)
    assert g.find_path(a, c) == [(a, c)]


# -- schemes ------------------------------------------------------------------------


def test_param_own_names_power():
    from repro.bt.analysis import analyse_program

    analysis = analyse_program(
        load_program(
            "module M where\n\n"
            "power n x = if n == 1 then x else x * power (n - 1) x\n"
        )
    )
    assert param_own_names(analysis.schemes["power"]) == (("t",), ("u",))


def test_param_own_names_structured():
    from repro.bt.analysis import analyse_program

    analysis = analyse_program(
        load_program(
            "module M where\n\n"
            "len xs = if null xs then 0 else 1 + len (tail xs)\n"
        )
    )
    (xs_names,) = param_own_names(analysis.schemes["len"])
    assert len(xs_names) == 2  # spine + element slots


# -- runtime stats and misc -------------------------------------------------------------


def test_stats_as_dict_round_trip():
    s = rt.Stats()
    s.specialisations = 3
    d = s.as_dict()
    assert d["specialisations"] == 3
    assert set(d) >= {"unfolds", "memo_hits", "pending_peak", "active_peak"}


def test_spec_state_place_with_unknown_function():
    from repro.modsys.graph import ModuleGraph

    st = rt.SpecState({}, ModuleGraph({"A": ()}))
    # Unknown functions contribute no modules; placement is empty.
    assert st.place("ghost", ()) == frozenset()


def test_from_python_rejects_unknown_values():
    with pytest.raises(rt.SpecError):
        rt.from_python(object())


def test_code_of_error_message_mentions_coercion():
    with pytest.raises(rt.SpecError) as exc:
        rt.code_of(rt.SBase(1))
    assert "coercion" in str(exc.value)


# -- engine result convenience -----------------------------------------------------------


def test_result_run_accepts_fuel():
    gp = repro.compile_genexts(
        "module M where\n\nloop x = if x == 0 then 0 else loop (x - 1)\n"
    )
    result = repro.specialise(gp, "loop", {})
    from repro.interp import EvalError

    with pytest.raises(EvalError):
        result.run(10_000_000, fuel=100)
