"""Parser unit tests (experiment E1: the Fig. 1 grammar)."""

import pytest

from repro.lang.ast import App, Call, Def, If, Lam, Lit, Prim, Var
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expr, parse_module, parse_program


# -- atoms -------------------------------------------------------------------


def test_nat_literal():
    assert parse_expr("42") == Lit(42)


def test_boolean_literals():
    assert parse_expr("true") == Lit(True)
    assert parse_expr("false") == Lit(False)


def test_nil_literal():
    assert parse_expr("nil") == Lit(())


def test_variable():
    assert parse_expr("x") == Var("x")


def test_parenthesised_expression():
    assert parse_expr("((x))") == Var("x")


def test_list_sugar():
    assert parse_expr("[1, 2]") == Prim(
        "cons", (Lit(1), Prim("cons", (Lit(2), Lit(()))))
    )
    assert parse_expr("[]") == Lit(())


def test_nested_list_sugar():
    assert parse_expr("[[1]]") == Prim(
        "cons", (Prim("cons", (Lit(1), Lit(()))), Lit(()))
    )


# -- operators ----------------------------------------------------------------


def test_arithmetic_precedence():
    assert parse_expr("1 + 2 * 3") == Prim(
        "+", (Lit(1), Prim("*", (Lit(2), Lit(3))))
    )


def test_left_associativity_of_minus():
    assert parse_expr("5 - 2 - 1") == Prim(
        "-", (Prim("-", (Lit(5), Lit(2))), Lit(1))
    )


def test_cons_is_right_associative():
    assert parse_expr("1 : 2 : nil") == Prim(
        "cons", (Lit(1), Prim("cons", (Lit(2), Lit(()))))
    )


def test_comparison_binds_looser_than_arithmetic():
    assert parse_expr("x + 1 == 2") == Prim(
        "==", (Prim("+", (Var("x"), Lit(1))), Lit(2))
    )


def test_comparison_is_non_associative():
    with pytest.raises(ParseError):
        parse_expr("1 == 2 == 3")


def test_boolean_operators_precedence():
    assert parse_expr("a && b || c") == Prim(
        "or", (Prim("and", (Var("a"), Var("b"))), Var("c"))
    )


def test_at_application_left_associative():
    assert parse_expr("f @ x @ y") == App(App(Var("f"), Var("x")), Var("y"))


def test_at_binds_tighter_than_arithmetic():
    assert parse_expr("f @ x + 1") == Prim("+", (App(Var("f"), Var("x")), Lit(1)))


def test_at_right_operand_can_be_juxtaposition():
    assert parse_expr("f @ g x") == App(Var("f"), Call("g", (Var("x"),)))


# -- calls and prims ------------------------------------------------------------


def test_named_call_by_juxtaposition():
    assert parse_expr("power (n - 1) x") == Call(
        "power", (Prim("-", (Var("n"), Lit(1))), Var("x"))
    )


def test_prefix_primitives_resolve_to_prim_nodes():
    assert parse_expr("head xs") == Prim("head", (Var("xs"),))
    assert parse_expr("cons x xs") == Prim("cons", (Var("x"), Var("xs")))
    assert parse_expr("pair 1 2") == Prim("pair", (Lit(1), Lit(2)))


def test_prefix_primitive_arity_checked_by_parser():
    with pytest.raises(ParseError):
        parse_expr("head xs ys")


def test_bare_primitive_is_rejected():
    with pytest.raises(ParseError):
        parse_expr("head")


def test_non_identifier_head_cannot_be_juxtaposed():
    with pytest.raises(ParseError) as exc:
        parse_expr("(f) x")
    assert "'@'" in str(exc.value)


# -- lambda and if ---------------------------------------------------------------


def test_lambda():
    assert parse_expr("\\x -> x + 1") == Lam("x", Prim("+", (Var("x"), Lit(1))))


def test_lambda_body_extends_right():
    assert parse_expr("\\x -> f @ x + 1") == Lam(
        "x", Prim("+", (App(Var("f"), Var("x")), Lit(1)))
    )


def test_if_then_else():
    assert parse_expr("if c then 1 else 2") == If(Var("c"), Lit(1), Lit(2))


def test_nested_if_in_else():
    e = parse_expr("if a then 1 else if b then 2 else 3")
    assert e == If(Var("a"), Lit(1), If(Var("b"), Lit(2), Lit(3)))


# -- modules ----------------------------------------------------------------------


def test_module_with_imports_and_defs():
    m = parse_module(
        "module M where\n"
        "import A\n"
        "import B\n"
        "\n"
        "f x = x\n"
        "g = 1\n"
    )
    assert m.name == "M"
    assert m.imports == ("A", "B")
    assert m.defs == (Def("f", ("x",), Var("x")), Def("g", (), Lit(1)))


def test_layout_continuation_lines_must_be_indented():
    m = parse_module(
        "module M where\n"
        "\n"
        "f x =\n"
        "  if x == 0 then 1\n"
        "  else 2\n"
        "g y = y\n"
    )
    assert [d.name for d in m.defs] == ["f", "g"]


def test_layout_stops_juxtaposition_at_column_one():
    m = parse_module(
        "module M where\n"
        "\n"
        "f x = g x\n"
        "g x = x\n"
    )
    assert m.defs[0].body == Call("g", (Var("x"),))


def test_definition_not_at_column_one_is_rejected():
    with pytest.raises(ParseError):
        parse_module("module M where\n f x = x\n")


def test_duplicate_parameter_rejected():
    with pytest.raises(ParseError):
        parse_module("module M where\nf x x = x\n")


def test_program_with_multiple_modules():
    p = parse_program(
        "module A where\n\nf x = x\n"
        "module B where\nimport A\n\ng y = f y\n"
    )
    assert p.module_names() == ("A", "B")


def test_empty_program_rejected():
    with pytest.raises(ParseError):
        parse_program("")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_expr("1 + ")


def test_error_position_is_reported():
    with pytest.raises(ParseError) as exc:
        parse_expr("if x then 1")
    assert exc.value.line == 1


def test_zero_arity_definition_reference_parses_as_var():
    # Resolution to Call('c', ()) happens in validate, not in the parser.
    m = parse_module("module M where\n\nc = 1\nf x = x + c\n")
    assert m.defs[1].body == Prim("+", (Var("x"), Var("c")))
