"""Binding-time interface files: serialisation round-trips and the
separate-analysis manager."""

import json
import os
import time

import pytest

from repro.bt.analysis import analyse_program
from repro.bt.interface import (
    InterfaceError,
    InterfaceManager,
    read_interface,
    scheme_from_json,
    scheme_to_json,
    write_interface,
)
from repro.modsys.program import load_program, load_program_dir

LIB = "module Lib where\n\npower n x = if n == 1 then x else x * power (n - 1) x\nident x = x\n"
APP = "module App where\nimport Lib\n\ncube y = power 3 y\n"


def all_schemes(source):
    return analyse_program(load_program(source)).schemes


def test_scheme_json_roundtrip():
    for name, scheme in all_schemes(LIB).items():
        assert scheme_from_json(scheme_to_json(scheme)) == scheme


def test_scheme_json_roundtrip_higher_order():
    src = (
        "module M where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "swap p = pair (snd p) (fst p)\n"
    )
    for scheme in all_schemes(src).values():
        assert scheme_from_json(scheme_to_json(scheme)) == scheme


def test_json_is_actually_json():
    scheme = all_schemes(LIB)["power"]
    text = json.dumps(scheme_to_json(scheme))
    assert scheme_from_json(json.loads(text)) == scheme


def test_interface_file_roundtrip(tmp_path):
    schemes = all_schemes(LIB)
    path = str(tmp_path / "Lib.bti")
    write_interface(path, "Lib", schemes)
    name, loaded = read_interface(path)
    assert name == "Lib"
    assert loaded == schemes


def test_malformed_interface_rejected(tmp_path):
    path = str(tmp_path / "Bad.bti")
    (tmp_path / "Bad.bti").write_text("{not json")
    with pytest.raises(InterfaceError):
        read_interface(path)


def test_wrong_format_version_rejected(tmp_path):
    path = str(tmp_path / "Bad.bti")
    (tmp_path / "Bad.bti").write_text('{"format": 999, "module": "X", "schemes": {}}')
    with pytest.raises(InterfaceError):
        read_interface(path)


def _write_sources(tmp_path):
    (tmp_path / "Lib.mod").write_text(LIB)
    (tmp_path / "App.mod").write_text(APP)


def test_manager_analyses_in_dependency_order(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    schemes, analysed = manager.analyse(linked)
    assert analysed == ["Lib", "App"]
    assert set(schemes) == {"power", "ident", "cube"}
    assert os.path.exists(str(tmp_path / "Lib.bti"))
    assert os.path.exists(str(tmp_path / "App.bti"))


def test_manager_skips_up_to_date_modules(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    _, analysed = manager.analyse(linked)
    assert analysed == []


def test_manager_reanalyses_on_source_change(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    time.sleep(0.01)
    (tmp_path / "App.mod").write_text(APP + "quad y = power 4 y\n")
    os.utime(str(tmp_path / "App.mod"))
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    assert analysed == ["App"]


def test_manager_reanalyses_importers_when_library_changes(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    time.sleep(0.01)
    os.utime(str(tmp_path / "Lib.mod"))
    _, analysed = manager.analyse(linked)
    assert analysed == ["Lib", "App"]


def test_manager_matches_whole_program_analysis(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    schemes, _ = manager.analyse(linked)
    whole = analyse_program(linked).schemes
    assert schemes == whole


def test_manager_force_reanalyses_everything(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    _, analysed = manager.analyse(linked, force=True)
    assert analysed == ["Lib", "App"]
