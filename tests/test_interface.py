"""Binding-time interface files: serialisation round-trips and the
separate-analysis manager (content-digest invalidation)."""

import json
import os

import pytest

from repro.bt.analysis import analyse_program
from repro.bt.interface import (
    InterfaceError,
    InterfaceManager,
    interface_digest,
    module_key,
    read_interface,
    scheme_from_json,
    scheme_to_json,
    write_interface,
)
from repro.modsys.program import load_program, load_program_dir

LIB = "module Lib where\n\npower n x = if n == 1 then x else x * power (n - 1) x\nident x = x\n"
APP = "module App where\nimport Lib\n\ncube y = power 3 y\n"


def all_schemes(source):
    return analyse_program(load_program(source)).schemes


def test_scheme_json_roundtrip():
    for name, scheme in all_schemes(LIB).items():
        assert scheme_from_json(scheme_to_json(scheme)) == scheme


def test_scheme_json_roundtrip_higher_order():
    src = (
        "module M where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "swap p = pair (snd p) (fst p)\n"
    )
    for scheme in all_schemes(src).values():
        assert scheme_from_json(scheme_to_json(scheme)) == scheme


def test_json_is_actually_json():
    scheme = all_schemes(LIB)["power"]
    text = json.dumps(scheme_to_json(scheme))
    assert scheme_from_json(json.loads(text)) == scheme


def test_interface_file_roundtrip(tmp_path):
    schemes = all_schemes(LIB)
    path = str(tmp_path / "Lib.bti")
    write_interface(path, "Lib", schemes)
    name, loaded = read_interface(path)
    assert name == "Lib"
    assert loaded == schemes


def test_malformed_interface_rejected(tmp_path):
    path = str(tmp_path / "Bad.bti")
    (tmp_path / "Bad.bti").write_text("{not json")
    with pytest.raises(InterfaceError):
        read_interface(path)


def test_truncated_interface_rejected(tmp_path):
    """A partially written (torn) file raises InterfaceError naming the
    path, never a bare json.JSONDecodeError."""
    good = str(tmp_path / "Lib.bti")
    write_interface(good, "Lib", all_schemes(LIB))
    text = open(good).read()
    bad = tmp_path / "Torn.bti"
    bad.write_text(text[: len(text) // 2])
    with pytest.raises(InterfaceError) as excinfo:
        read_interface(str(bad))
    assert "Torn.bti" in str(excinfo.value)


@pytest.mark.parametrize(
    "payload",
    [
        "[1, 2, 3]",  # valid JSON, wrong top-level shape
        '"just a string"',
        '{"format": 1, "schemes": {}}',  # module missing
        '{"format": 1, "module": "X"}',  # schemes missing
        '{"format": 1, "module": "X", "schemes": []}',  # schemes wrong type
        '{"format": 1, "module": "X", "schemes": {"f": {"args": "?"}}}',
    ],
)
def test_structurally_wrong_interface_rejected(tmp_path, payload):
    path = tmp_path / "Bad.bti"
    path.write_text(payload)
    with pytest.raises(InterfaceError):
        read_interface(str(path))


def test_wrong_format_version_rejected(tmp_path):
    path = str(tmp_path / "Bad.bti")
    (tmp_path / "Bad.bti").write_text('{"format": 999, "module": "X", "schemes": {}}')
    with pytest.raises(InterfaceError):
        read_interface(path)


def test_write_interface_is_atomic(tmp_path, monkeypatch):
    """A crash mid-serialisation must leave the previous file intact and
    no temp droppings behind."""
    path = str(tmp_path / "Lib.bti")
    schemes = all_schemes(LIB)
    write_interface(path, "Lib", schemes)
    before = open(path).read()

    import repro.bt.interface as iface_mod

    def explode(*args, **kwargs):
        raise RuntimeError("disk full")

    monkeypatch.setattr(iface_mod, "interface_text", explode)
    with pytest.raises(RuntimeError):
        write_interface(path, "Lib", schemes)
    monkeypatch.undo()
    assert open(path).read() == before

    # Interrupt *after* serialisation, inside the actual write.
    real_replace = os.replace

    def no_replace(src, dst):
        raise OSError("interrupted")

    monkeypatch.setattr(os, "replace", no_replace)
    with pytest.raises(OSError):
        write_interface(path, "Lib", schemes)
    monkeypatch.setattr(os, "replace", real_replace)
    assert open(path).read() == before
    assert sorted(os.listdir(str(tmp_path))) == ["Lib.bti"], "no temp leftovers"


def test_interface_serialisation_is_canonical(tmp_path):
    """Writing the same schemes twice gives byte-identical files — the
    property the digest scheme equates with semantic equality."""
    schemes = all_schemes(LIB)
    a, b = str(tmp_path / "A.bti"), str(tmp_path / "B.bti")
    write_interface(a, "Lib", schemes)
    write_interface(b, "Lib", dict(reversed(list(schemes.items()))))
    assert open(a).read() == open(b).read()
    assert interface_digest(a) == interface_digest(b)


def test_module_key_sensitivity():
    key = module_key(b"src", [("A", "d1"), ("B", "d2")])
    assert key == module_key(b"src", [("B", "d2"), ("A", "d1")]), "order-free"
    assert key != module_key(b"src2", [("A", "d1"), ("B", "d2")])
    assert key != module_key(b"src", [("A", "XX"), ("B", "d2")])
    assert key != module_key(b"src", [("A", "d1")])
    assert key != module_key(b"src", [("A", "d1"), ("B", "d2")], {"f"})
    assert key != module_key(b"src", [("A", None), ("B", "d2")])


def _write_sources(tmp_path):
    (tmp_path / "Lib.mod").write_text(LIB)
    (tmp_path / "App.mod").write_text(APP)


def test_manager_analyses_in_dependency_order(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    schemes, analysed = manager.analyse(linked)
    assert analysed == ["Lib", "App"]
    assert set(schemes) == {"power", "ident", "cube"}
    assert os.path.exists(str(tmp_path / "Lib.bti"))
    assert os.path.exists(str(tmp_path / "App.bti"))


def test_manager_skips_up_to_date_modules(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    _, analysed = manager.analyse(linked)
    assert analysed == []


def test_manager_reanalyses_on_source_change(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    (tmp_path / "App.mod").write_text(APP + "quad y = power 4 y\n")
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    assert analysed == ["App"]


def test_manager_reanalyses_importers_when_library_interface_changes(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    # A new export changes Lib's interface, so App's key changes too.
    (tmp_path / "Lib.mod").write_text(LIB + "twice x = x + x\n")
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    assert analysed == ["Lib", "App"]


def test_manager_ignores_touch(tmp_path):
    """Timestamps are irrelevant: utime without a content change (touch,
    fresh checkout) must not re-analyse anything."""
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    import time

    future = time.time() + 100
    os.utime(str(tmp_path / "Lib.mod"), (future, future))
    os.utime(str(tmp_path / "App.mod"), (future, future))
    _, analysed = manager.analyse(linked)
    assert analysed == []


def test_early_cutoff_stops_propagation_at_unchanged_interface(tmp_path):
    """Editing Lib in a way that leaves its *interface* byte-identical
    (a comment) re-analyses Lib but — early cutoff — not App, because
    App's key is built from Lib's interface digest, not Lib's source."""
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    iface_before = open(str(tmp_path / "Lib.bti")).read()
    (tmp_path / "Lib.mod").write_text("-- a comment\n" + LIB)
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    assert analysed == ["Lib"], "the edit dirties Lib alone"
    assert open(str(tmp_path / "Lib.bti")).read() == iface_before
    # And the transitive case: a *semantic* Lib change must still reach
    # an importer-of-an-importer when the middle interface changes.
    (tmp_path / "Top.mod").write_text(
        "module Top where\nimport App\n\nmain z = cube z + 1\n"
    )
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    assert analysed == ["Top"]
    (tmp_path / "Lib.mod").write_text(LIB + "cubeof x = x * x * x\n")
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    # Lib's interface changed -> App re-analysed; App's interface is
    # byte-identical (its schemes are unchanged) -> Top is cut off.
    assert analysed == ["Lib", "App"]
    # But when the middle interface *does* change, propagation reaches
    # the importer-of-an-importer.
    (tmp_path / "App.mod").write_text(APP + "quad y = power 4 y\n")
    linked = load_program_dir(str(tmp_path))
    _, analysed = manager.analyse(linked)
    assert analysed == ["App", "Top"]


def test_manager_matches_whole_program_analysis(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    schemes, _ = manager.analyse(linked)
    whole = analyse_program(linked).schemes
    assert schemes == whole


def test_manager_force_reanalyses_everything(tmp_path):
    _write_sources(tmp_path)
    linked = load_program_dir(str(tmp_path))
    manager = InterfaceManager(str(tmp_path))
    manager.analyse(linked)
    _, analysed = manager.analyse(linked, force=True)
    assert analysed == ["Lib", "App"]
