"""The parallel batch-specialisation driver.

The load-bearing property: for any ``jobs`` width, cold or warm cache,
``specialise_many`` produces residual programs byte-identical to
one-at-a-time ``specialise`` — parallelism and caching are pure
performance, never semantics.  Plus: request coercion, parent-side
dedup, shared-cache reuse, failure isolation, the batch counters, and
the ``mspec specialise --batch`` CLI surface.
"""

import json

import pytest

import repro
from repro.api import SpecOptions
from repro.genext.batch import BatchRequest, specialise_many
from repro.genext.runtime import SpecError
from repro.obs import Obs

TWO_MODULES = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x

module Sum where
import Power

sumpow n x y = power n x + power n y
"""

REQUESTS = [
    ("power", {"n": 2}),
    ("sumpow", {"n": 3}),
    ("power", {"n": 4}),
    ("power", {"n": 2}),  # duplicate of #0
    ("sumpow", {"n": 3}),  # duplicate of #1
    ("power", {"n": 5}),
]


@pytest.fixture(scope="module")
def gp():
    return repro.compile_genexts(TWO_MODULES)


def _texts(batch):
    return [repro.pretty_program(r.program) for r in batch.results]


# ---------------------------------------------------------------------------
# The byte-identity property.
# ---------------------------------------------------------------------------


def test_batch_matches_one_at_a_time_for_every_jobs_width(gp, tmp_path):
    reference = [
        repro.pretty_program(
            repro.specialise(gp, goal, args).program
        )
        for goal, args in REQUESTS
    ]
    outputs = {}
    for jobs in (1, 2, 4):
        for state in ("cold", "warm"):
            cache = str(tmp_path / ("cache-%d" % jobs))
            batch = specialise_many(
                gp, REQUESTS, SpecOptions(cache_dir=cache), jobs=jobs
            )
            assert batch.ok, batch.render_failures()
            outputs[(jobs, state)] = _texts(batch)
    for key, texts in outputs.items():
        assert texts == reference, "divergence at jobs=%d, %s" % key


def test_batch_without_a_cache_is_still_identical(gp):
    reference = _texts(specialise_many(gp, REQUESTS, jobs=1))
    assert _texts(specialise_many(gp, REQUESTS, jobs=4)) == reference


# ---------------------------------------------------------------------------
# Dedup and sharing.
# ---------------------------------------------------------------------------


def test_duplicate_requests_share_one_result_object(gp):
    batch = specialise_many(gp, REQUESTS, jobs=1)
    assert batch.results[0] is batch.results[3]
    assert batch.results[1] is batch.results[4]
    assert batch.stats == {
        "requests": 6,
        "unique": 4,
        "deduped": 2,
        "failed": 0,
        "jobs": 1,
    }


def test_batch_counters(gp):
    obs = Obs()
    specialise_many(gp, REQUESTS, jobs=1, obs=obs)
    snapshot = obs.metrics.snapshot()
    assert snapshot["counters"]["batch.requests"] == 6
    assert snapshot["counters"]["batch.deduped"] == 2
    assert snapshot["counters"]["batch.failed"] == 0
    assert snapshot["gauges"]["batch.jobs"] == 1


def test_second_batch_is_answered_from_the_shared_cache(gp, tmp_path):
    options = SpecOptions(cache_dir=str(tmp_path))
    specialise_many(gp, REQUESTS, options, jobs=1)
    obs = Obs()
    batch = specialise_many(gp, REQUESTS, options, jobs=1, obs=obs)
    assert batch.ok
    counters = obs.metrics.snapshot()["counters"]
    assert counters["speccache.hits"] == 4  # every unique request
    assert "speccache.writes" not in counters


def test_batch_results_run(gp):
    batch = specialise_many(gp, [("sumpow", {"n": 3}), ("power", {"n": 3})])
    assert batch.results[0].run(2, 3) == 35  # 8 + 27
    assert batch.results[1].run(2) == 8


# ---------------------------------------------------------------------------
# Request coercion.
# ---------------------------------------------------------------------------


def test_requests_accept_mappings_and_objects(gp):
    batch = specialise_many(
        gp,
        [
            {"goal": "power", "static_args": {"n": 2}},
            {"goal": "power"},
            BatchRequest("power", (("n", 2),)),
            ("power", {"n": 2}),
        ],
    )
    assert batch.ok
    # The mapping, BatchRequest, and tuple spellings of n=2 dedup.
    assert batch.stats["unique"] == 2


@pytest.mark.parametrize(
    "bad",
    [
        {"goal": "power", "static_args": {"n": 2}, "extra": 1},
        {"static_args": {"n": 2}},
        {"goal": 7},
        {"goal": "power", "static_args": [1, 2]},
        42,
    ],
)
def test_malformed_requests_are_rejected(gp, bad):
    with pytest.raises(SpecError):
        specialise_many(gp, [bad])


def test_sink_is_rejected(gp):
    with pytest.raises(SpecError):
        specialise_many(
            gp, [("power", {"n": 2})], SpecOptions(sink=lambda p, d: None)
        )


def test_bad_jobs_is_rejected(gp):
    with pytest.raises(ValueError):
        specialise_many(gp, [("power", {"n": 2})], jobs=0)


# ---------------------------------------------------------------------------
# Failure isolation.
# ---------------------------------------------------------------------------


def test_one_failure_does_not_abandon_the_rest(gp):
    batch = specialise_many(
        gp,
        [("power", {"n": 2}), ("power", {"bogus": 1}), ("power", {"n": 3})],
        jobs=1,
    )
    assert not batch.ok
    assert batch.results[0] is not None and batch.results[2] is not None
    assert batch.results[1] is None
    assert list(batch.failures) == [1]
    assert batch.failures[1].kind == "error"
    assert "req1" in batch.render_failures()
    assert batch.stats["failed"] == 1


def test_duplicate_of_a_failing_request_fails_identically(gp):
    batch = specialise_many(
        gp, [("power", {"bogus": 1}), ("power", {"bogus": 1})], jobs=1
    )
    assert set(batch.failures) == {0, 1}
    assert batch.stats["deduped"] == 1


def test_failures_under_a_pool_are_isolated_too(gp, tmp_path):
    batch = specialise_many(
        gp,
        [("power", {"n": 2}), ("power", {"bogus": 1}), ("power", {"n": 3})],
        SpecOptions(cache_dir=str(tmp_path)),
        jobs=2,
    )
    assert not batch.ok
    assert batch.results[0] is not None and batch.results[2] is not None
    assert list(batch.failures) == [1]


# ---------------------------------------------------------------------------
# The unshippable-program fallback (MixProgram has no module sources).
# ---------------------------------------------------------------------------


def test_mix_program_degrades_to_serial_but_works(tmp_path):
    from repro.specialiser.mix import MixProgram

    mp = MixProgram.from_source(TWO_MODULES)
    batch = specialise_many(
        mp,
        [("power", {"n": 3}), ("power", {"n": 3}), ("power", {"n": 2})],
        SpecOptions(cache_dir=str(tmp_path)),
        jobs=4,
    )
    assert batch.ok
    assert batch.stats["jobs"] == 1  # no module sources to ship
    assert batch.stats["deduped"] == 1  # fingerprint still keys dedup
    assert batch.results[0].run(2) == 8


# ---------------------------------------------------------------------------
# The --batch CLI surface.
# ---------------------------------------------------------------------------


def _write_src(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    for name, text in (
        ("Power", TWO_MODULES.split("\nmodule Sum")[0]),
    ):
        (src / (name + ".mod")).write_text(text)
    return src


def test_cli_batch_json_report(tmp_path, capsys):
    from repro.cli import main
    from repro.obs.schema import validate_report

    src = _write_src(tmp_path)
    reqs = tmp_path / "requests.json"
    reqs.write_text(
        json.dumps(
            [
                {"goal": "power", "static_args": {"n": 3}},
                {"goal": "power", "static_args": {"n": 5}},
                {"goal": "power", "static_args": {"n": 3}},
            ]
        )
    )
    rc = main(
        ["specialise", str(src), "--batch", str(reqs), "--jobs", "2", "--json"]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert validate_report(doc) == []
    assert doc["report"]["batch"]["requests"] == 3
    assert doc["report"]["batch"]["deduped"] == 1
    requests = doc["report"]["requests"]
    assert [r["ok"] for r in requests] == [True, True, True]
    assert requests[0]["program"] == requests[2]["program"]
    assert doc["metrics"]["counters"]["batch.requests"] == 3


def test_cli_batch_failure_exit_code_and_prose(tmp_path, capsys):
    from repro.cli import main

    src = _write_src(tmp_path)
    reqs = tmp_path / "requests.json"
    reqs.write_text(
        json.dumps(
            {
                "requests": [
                    {"goal": "power", "static_args": {"n": 3}},
                    {"goal": "nosuch"},
                ]
            }
        )
    )
    rc = main(["specialise", str(src), "--batch", str(reqs)])
    assert rc == 3  # EXIT_ERROR
    out = capsys.readouterr().out
    assert "req0" in out and "FAILED" in out


def test_cli_batch_writes_per_request_dirs(tmp_path, capsys):
    from repro.cli import main

    src = _write_src(tmp_path)
    reqs = tmp_path / "requests.json"
    reqs.write_text(json.dumps([{"goal": "power", "static_args": {"n": 2}}]))
    out_dir = tmp_path / "out"
    rc = main(
        ["specialise", str(src), "--batch", str(reqs), "-o", str(out_dir)]
    )
    assert rc == 0
    assert (out_dir / "req0" / "Power.mod").exists()


def test_cli_batch_rejects_goal_argument(tmp_path):
    from repro.cli import main

    src = _write_src(tmp_path)
    reqs = tmp_path / "requests.json"
    reqs.write_text(json.dumps([{"goal": "power"}]))
    with pytest.raises(SystemExit):
        main(["specialise", str(src), "power", "--batch", str(reqs)])


def test_cli_goal_required_without_batch(tmp_path):
    from repro.cli import main

    src = _write_src(tmp_path)
    with pytest.raises(SystemExit):
        main(["specialise", str(src)])


def test_cli_batch_rejects_malformed_file(tmp_path):
    from repro.cli import main

    src = _write_src(tmp_path)
    reqs = tmp_path / "requests.json"
    reqs.write_text(json.dumps({"nope": 1}))
    with pytest.raises(SystemExit):
        main(["specialise", str(src), "--batch", str(reqs)])


# ---------------------------------------------------------------------------
# Regression: residual parameter hints beyond the 64-name fallback.
# ---------------------------------------------------------------------------


def test_param_hints_fallback_covers_more_than_64_arguments():
    from repro.genext.runtime import _param_hints

    class _St:
        fn_info = {}

    hints = _param_hints(_St(), "nosuch", 70)
    assert len(hints) >= 70
    assert len(set(hints[:70])) == 70  # names stay distinct
    # And the small case still serves from the precomputed tuple.
    assert _param_hints(_St(), "nosuch", 3)[:3] == ("a0", "a1", "a2")
