"""E8: the residual module structures of the paper's Sec. 5 examples."""

import pytest

import repro
from repro.bench.generators import power_twice_main_source
from repro.api import SpecOptions


@pytest.fixture(scope="module")
def ptm_result():
    gp = repro.compile_genexts(power_twice_main_source(), SpecOptions(force_residual={"power", "twice", "main"}))
    return repro.specialise(gp, "main", {})


def module_map(result):
    return {m.name: m for m in result.program.modules}


def test_residual_module_names(ptm_result):
    assert sorted(module_map(ptm_result)) == ["Main", "Power", "PowerTwice"]


def test_power_module_has_three_specialisations(ptm_result):
    power = module_map(ptm_result)["Power"]
    assert len(power.defs) == 3
    assert all(d.name.startswith("power") for d in power.defs)


def test_power_chain_counts_down(ptm_result):
    # power_1 calls power_2 calls power_3; power_3 is the base case.
    power = module_map(ptm_result)["Power"]
    from repro.lang.names import called_functions

    defs = {d.name: d for d in power.defs}
    chain = sorted(defs)
    assert called_functions(defs[chain[0]].body) == frozenset({chain[1]})
    assert called_functions(defs[chain[1]].body) == frozenset({chain[2]})
    assert called_functions(defs[chain[2]].body) == frozenset()


def test_combination_module_power_twice(ptm_result):
    pt = module_map(ptm_result)["PowerTwice"]
    assert pt.imports == ("Power",)
    assert len(pt.defs) == 1
    (d,) = pt.defs
    assert d.name.startswith("twice")


def test_main_module_imports_combination(ptm_result):
    main = module_map(ptm_result)["Main"]
    assert main.imports == ("PowerTwice",)
    assert main.defs[0].name == "main"


def test_residual_structure_differs_from_source(ptm_result):
    # The source has modules Power, Twice, Main; the residual program has
    # Power, PowerTwice, Main — "quite different from that of the source".
    source_modules = {"Power", "Twice", "Main"}
    residual_modules = set(module_map(ptm_result))
    assert residual_modules != source_modules
    assert "Twice" not in residual_modules


def test_empty_modules_not_emitted(ptm_result):
    # Module Twice would be empty (its only specialisation moved to the
    # combination); it must not exist.
    for m in ptm_result.program.modules:
        assert m.defs


def test_behaviour_is_two_to_the_ninth(ptm_result):
    assert ptm_result.run(2) == 512
    assert ptm_result.run(3) == 3 ** 9


def test_unforced_variant_unfolds_everything():
    gp = repro.compile_genexts(power_twice_main_source())
    result = repro.specialise(gp, "main", {})
    # With the automatic unfold rule, power {S,D} unfolds (its conditional
    # is static) and so do twice/main: the residual program is one module
    # with a single entry computing y^9 inline.
    assert result.run(2) == 512
    assert len(result.program.modules) == 1
    from repro.lang.ast import count_nodes

    (module,) = result.program.modules
    (entry,) = module.defs
    assert count_nodes(entry.body) >= 17  # 8 multiplications inline


def test_placement_decided_before_bodies_exist():
    # The placement of twice's specialisation must already be the
    # combination at first request, which the streaming sink observes.
    gp = repro.compile_genexts(power_twice_main_source(), SpecOptions(force_residual={"power", "twice", "main"}))
    placements = []
    repro.specialise(gp, "main", {}, SpecOptions(sink=lambda pl, d: placements.append((d.name, set(pl)))))
    by_name = {name: pl for name, pl in placements}
    twice_name = next(n for n in by_name if n.startswith("twice"))
    assert by_name[twice_name] == {"Power", "Twice"}
