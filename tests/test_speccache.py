"""The persistent residual cache and the RTCG callable LRU.

Covers the warm-hit contract (byte-identical residual programs, no
SpecState constructed), key invalidation (module source edits, keyed
SpecOptions fields), execution knobs staying out of the key, corrupt
entries degrading to misses, fsck integration, and the ``speccache.*``
/ ``rtcg.lru_*`` accounting.
"""

import json
import os

import pytest

import repro
from repro.api import SpecOptions
from repro.backend import generate, rtcg
from repro.obs import Obs
from repro.pipeline.cache import RESID_KIND, ArtifactCache
from repro.pipeline.faults import fsck_cache
from repro.speccache import (
    SPECCACHE_SCHEMA,
    SpecCache,
    canonical_static_args,
    decode_result,
    encode_result,
    residual_cache_key,
    validate_payload_bytes,
)

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""

POWER_EDITED = """\
module Power where

power n x = if n == 1 then x else x + power (n - 1) x
"""


@pytest.fixture(autouse=True)
def _fresh_lru():
    rtcg.clear_lru()
    yield
    rtcg.clear_lru()
    rtcg.configure_lru(128)


def _gp(source=POWER):
    return repro.compile_genexts(source)


# ---------------------------------------------------------------------------
# Keys.
# ---------------------------------------------------------------------------


def test_canonical_static_args_is_order_insensitive():
    assert canonical_static_args({"a": 1, "b": 2}) == canonical_static_args(
        {"b": 2, "a": 1}
    )


def test_canonical_static_args_tuples_and_lists_collapse():
    assert canonical_static_args({"xs": (1, 2)}) == canonical_static_args(
        {"xs": [1, 2]}
    )


def test_canonical_static_args_bools_stay_distinct_from_ints():
    assert canonical_static_args({"a": True}) != canonical_static_args(
        {"a": 1}
    )


def test_canonical_static_args_rejects_exotic_values():
    with pytest.raises(TypeError):
        canonical_static_args({"a": object()})


def test_key_ignores_execution_knobs_but_not_semantics():
    gp = _gp()
    fp = gp.fingerprint()
    base = residual_cache_key(fp, "power", {"n": 3}, SpecOptions())
    # Execution knobs: same key.
    assert base == residual_cache_key(
        fp, "power", {"n": 3}, SpecOptions(fuel=7, timeout=9.0)
    )
    assert base == residual_cache_key(
        fp, "power", {"n": 3}, SpecOptions(cache_dir="/elsewhere")
    )
    # Semantic fields: different keys.
    assert base != residual_cache_key(
        fp, "power", {"n": 3}, SpecOptions(strategy="dfs")
    )
    assert base != residual_cache_key(
        fp, "power", {"n": 3}, SpecOptions(monolithic=True)
    )
    assert base != residual_cache_key(
        fp, "power", {"n": 3}, SpecOptions(max_versions=1)
    )
    # And of course the request itself.
    assert base != residual_cache_key(fp, "power", {"n": 4}, SpecOptions())


def test_fingerprint_changes_when_a_module_source_changes():
    assert _gp(POWER).fingerprint() != _gp(POWER_EDITED).fingerprint()


def test_fingerprint_is_stable_across_relinks():
    assert _gp(POWER).fingerprint() == _gp(POWER).fingerprint()


# ---------------------------------------------------------------------------
# Warm hits.
# ---------------------------------------------------------------------------


def test_warm_hit_is_byte_identical_and_counted(tmp_path):
    gp = _gp()
    options = SpecOptions(cache_dir=str(tmp_path))
    cold_obs, warm_obs = Obs(), Obs()
    cold = repro.specialise(gp, "power", {"n": 5}, options, obs=cold_obs)
    warm = repro.specialise(gp, "power", {"n": 5}, options, obs=warm_obs)

    assert repro.pretty_program(cold.program) == repro.pretty_program(
        warm.program
    )
    assert cold.entry == warm.entry
    assert cold.dynamic_params == warm.dynamic_params
    assert cold.stats == warm.stats  # the original run's stats, stored
    assert cold.module_names == warm.module_names
    assert warm.run(2) == 32

    cold_counters = cold_obs.metrics.snapshot()["counters"]
    warm_counters = warm_obs.metrics.snapshot()["counters"]
    assert cold_counters["speccache.misses"] == 1
    assert cold_counters["speccache.writes"] == 1
    assert warm_counters["speccache.hits"] == 1
    assert warm_counters["speccache.reads"] == 1
    # The work did not happen again: no spec.* stats were absorbed.
    assert "spec.unfolds" not in warm_counters


def test_warm_hit_emits_bus_event(tmp_path):
    gp = _gp()
    options = SpecOptions(cache_dir=str(tmp_path))
    repro.specialise(gp, "power", {"n": 3}, options)
    obs = Obs()
    events = []
    obs.bus.subscribe("speccache.hit", lambda name, payload: events.append(payload))
    repro.specialise(gp, "power", {"n": 3}, options, obs=obs)
    assert len(events) == 1
    assert events[0]["goal"] == "power"


def test_warm_hit_respects_the_callers_fuel(tmp_path):
    gp = _gp()
    options = SpecOptions(cache_dir=str(tmp_path))
    repro.specialise(gp, "power", {"n": 3}, options)
    warm = repro.specialise(
        gp, "power", {"n": 3}, options.replace(fuel=123)
    )
    assert warm.fuel == 123


def test_source_edit_forces_a_miss(tmp_path):
    options = SpecOptions(cache_dir=str(tmp_path))
    repro.specialise(_gp(POWER), "power", {"n": 3}, options)
    obs = Obs()
    edited = repro.specialise(
        _gp(POWER_EDITED), "power", {"n": 3}, options, obs=obs
    )
    counters = obs.metrics.snapshot()["counters"]
    assert counters["speccache.misses"] == 1
    assert "speccache.hits" not in counters
    assert edited.run(2) == 6  # 2 + (2 + 2): the edited semantics


def test_option_change_forces_a_miss(tmp_path):
    gp = _gp()
    repro.specialise(
        gp, "power", {"n": 3}, SpecOptions(cache_dir=str(tmp_path))
    )
    obs = Obs()
    repro.specialise(
        gp,
        "power",
        {"n": 3},
        SpecOptions(cache_dir=str(tmp_path), strategy="dfs"),
        obs=obs,
    )
    assert obs.metrics.snapshot()["counters"]["speccache.misses"] == 1


def test_sink_runs_bypass_the_cache(tmp_path):
    gp = _gp()
    obs = Obs()
    repro.specialise(
        gp,
        "power",
        {"n": 3},
        SpecOptions(cache_dir=str(tmp_path), sink=lambda pl, d: None),
        obs=obs,
    )
    counters = obs.metrics.snapshot()["counters"]
    assert "speccache.misses" not in counters
    assert "speccache.writes" not in counters


# ---------------------------------------------------------------------------
# Corruption.
# ---------------------------------------------------------------------------


def _the_only_resid_object(cache_dir):
    store = ArtifactCache(cache_dir)
    suffix = "." + RESID_KIND
    names = [fn for _, fn in store.objects() if fn.endswith(suffix)]
    assert len(names) == 1
    return store, names[0][: -len(suffix)]


def test_corrupt_entry_is_a_miss_that_recomputes(tmp_path):
    gp = _gp()
    options = SpecOptions(cache_dir=str(tmp_path))
    cold = repro.specialise(gp, "power", {"n": 4}, options)
    store, key = _the_only_resid_object(str(tmp_path))
    with open(store.path(key, RESID_KIND), "wb") as f:
        f.write(b"\x00garbage")

    obs = Obs()
    again = repro.specialise(gp, "power", {"n": 4}, options, obs=obs)
    counters = obs.metrics.snapshot()["counters"]
    assert counters["speccache.misses"] == 1
    assert counters["speccache.writes"] == 1  # the good entry is republished
    assert repro.pretty_program(again.program) == repro.pretty_program(
        cold.program
    )


def test_fsck_quarantines_corrupt_residual_payloads(tmp_path):
    gp = _gp()
    repro.specialise(
        gp, "power", {"n": 4}, SpecOptions(cache_dir=str(tmp_path))
    )
    store, key = _the_only_resid_object(str(tmp_path))

    healthy = fsck_cache(store)
    assert healthy.ok

    with open(store.path(key, RESID_KIND), "wb") as f:
        f.write(b'{"schema": "wrong"}')
    report = fsck_cache(store)
    assert not report.ok
    names = [name for name, _ in report.quarantined]
    assert names == ["%s.%s" % (key, RESID_KIND)]
    assert "corrupt residual payload" in report.quarantined[0][1]


def test_validate_payload_bytes_rejects_each_failure_mode(tmp_path):
    gp = _gp()
    result = repro.specialise(gp, "power", {"n": 2})
    payload = encode_result(result)
    good = json.dumps(payload).encode("utf-8")
    assert validate_payload_bytes(good) is None

    assert "not JSON" in validate_payload_bytes(b"\xff\xfe")
    assert "not an object" in validate_payload_bytes(b"[1]")
    bad_schema = dict(payload, schema="nope")
    assert "schema" in validate_payload_bytes(
        json.dumps(bad_schema).encode("utf-8")
    )
    for missing in ("entry", "dynamic_params", "stats", "program"):
        broken = {k: v for k, v in payload.items() if k != missing}
        assert missing in validate_payload_bytes(
            json.dumps(broken).encode("utf-8")
        )
    unparsable = dict(payload, program="module !!! where")
    assert "does not parse" in validate_payload_bytes(
        json.dumps(unparsable).encode("utf-8")
    )


def test_encode_decode_round_trip_preserves_everything():
    gp = _gp()
    result = repro.specialise(gp, "power", {"n": 6})
    decoded = decode_result(encode_result(result))
    assert repro.pretty_program(decoded.program) == repro.pretty_program(
        result.program
    )
    assert decoded.entry == result.entry
    assert decoded.dynamic_params == result.dynamic_params
    assert decoded.stats == result.stats
    assert decoded.module_names == result.module_names
    assert decoded.run(3) == 729


def test_payload_schema_marker():
    gp = _gp()
    payload = encode_result(repro.specialise(gp, "power", {"n": 2}))
    assert payload["schema"] == SPECCACHE_SCHEMA


def test_speccache_is_shareable_across_instances(tmp_path):
    gp = _gp()
    cache_a = SpecCache(str(tmp_path))
    cache_b = SpecCache(str(tmp_path))
    options = SpecOptions()
    key = cache_a.key(gp.fingerprint(), "power", {"n": 3}, options)
    result = repro.specialise(gp, "power", {"n": 3})
    cache_a.put(key, encode_result(result))
    assert cache_b.get(key) is not None


# ---------------------------------------------------------------------------
# The RTCG callable LRU.
# ---------------------------------------------------------------------------


def test_generate_lru_hit_returns_the_same_callable():
    gp = _gp()
    obs = Obs()
    first = generate(gp, "power", {"n": 3}, obs=obs)
    second = generate(gp, "power", {"n": 3}, obs=obs)
    assert second is first
    assert second(5) == 125
    counters = obs.metrics.snapshot()["counters"]
    assert counters["rtcg.lru_hits"] == 1
    assert counters["rtcg.lru_misses"] == 1


def test_generate_lru_distinguishes_requests():
    gp = _gp()
    cube = generate(gp, "power", {"n": 3})
    square = generate(gp, "power", {"n": 2})
    assert cube is not square
    assert cube(2) == 8 and square(2) == 4
    assert rtcg.lru_len() == 2


def test_generate_lru_evicts_least_recent():
    gp = _gp()
    rtcg.configure_lru(2)
    a = generate(gp, "power", {"n": 2})
    b = generate(gp, "power", {"n": 3})
    assert generate(gp, "power", {"n": 2}) is a  # refresh a: b is now LRU
    c = generate(gp, "power", {"n": 4})  # evicts b
    assert rtcg.lru_len() == 2
    assert generate(gp, "power", {"n": 2}) is a  # a survived
    assert generate(gp, "power", {"n": 4}) is c  # c survived
    assert generate(gp, "power", {"n": 3}) is not b  # b did not


def test_generate_lru_capacity_zero_disables():
    gp = _gp()
    rtcg.configure_lru(0)
    first = generate(gp, "power", {"n": 3})
    assert generate(gp, "power", {"n": 3}) is not first
    assert rtcg.lru_len() == 0


def test_configure_lru_rejects_negative():
    with pytest.raises(ValueError):
        rtcg.configure_lru(-1)


def test_generate_lru_invalidated_by_source_edit():
    cube = generate(_gp(POWER), "power", {"n": 3})
    other = generate(_gp(POWER_EDITED), "power", {"n": 3})
    assert other is not cube
    assert cube(2) == 8
    assert other(2) == 6


# ---------------------------------------------------------------------------
# The CLI surface.
# ---------------------------------------------------------------------------


def test_cli_cache_dir_single_request(tmp_path, capsys):
    from repro.cli import main

    src = tmp_path / "src"
    src.mkdir()
    (src / "Power.mod").write_text(POWER)
    cache = str(tmp_path / "cache")
    assert main(["specialise", str(src), "power", "n=3", "--cache-dir", cache]) == 0
    cold_out = capsys.readouterr().out
    assert main(["specialise", str(src), "power", "n=3", "--cache-dir", cache]) == 0
    warm_out = capsys.readouterr().out
    assert warm_out == cold_out
    assert os.path.isdir(cache)
