"""Object-language interpreter tests."""

import pytest

from repro.interp import EvalError, Interpreter, run_main, run_program
from repro.lang.prims import make_pair
from repro.modsys.program import load_program


def run(source, func, *args, **kwargs):
    return run_program(load_program(source), func, list(args), **kwargs)


def test_arithmetic_program():
    assert run("module M where\n\nf x = x * 2 + 1\n", "f", 5) == 11


def test_recursion():
    src = "module M where\n\nfact n = if n == 0 then 1 else n * fact (n - 1)\n"
    assert run(src, "fact", 6) == 720


def test_mutual_recursion():
    src = (
        "module M where\n\n"
        "even n = if n == 0 then true else odd (n - 1)\n"
        "odd n = if n == 0 then false else even (n - 1)\n"
    )
    assert run(src, "even", 10) is True
    assert run(src, "odd", 10) is False


def test_lists():
    src = (
        "module M where\n\n"
        "rev xs = revacc xs nil\n"
        "revacc xs acc = if null xs then acc else revacc (tail xs) (head xs : acc)\n"
    )
    assert run(src, "rev", (1, 2, 3)) == (3, 2, 1)


def test_higher_order_and_closures():
    src = (
        "module M where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "addall k xs = map (\\x -> x + k) xs\n"
    )
    assert run(src, "addall", 10, (1, 2)) == (11, 12)


def test_closure_captures_environment():
    src = (
        "module M where\n\n"
        "const k = \\x -> k\n"
        "go a b = const a @ b\n"
    )
    assert run(src, "go", 7, 99) == 7


def test_pairs():
    src = "module M where\n\nswap p = pair (snd p) (fst p)\n"
    assert run(src, "swap", make_pair(1, 2)) == make_pair(2, 1)


def test_cross_module_calls():
    src = (
        "module A where\n\ninc x = x + 1\n"
        "module B where\nimport A\n\nmain x = inc (inc x)\n"
    )
    assert run_main(load_program(src), [5]) == 7


def test_zero_arity_definitions():
    src = "module M where\n\nc = 41\nf x = c + x\n"
    assert run(src, "f", 1) == 42


def test_condition_must_be_boolean_at_runtime():
    src = "module M where\n\nf x = if x == 0 then 1 else 2\n"
    lp = load_program(src)
    interp = Interpreter(lp)
    from repro.lang.ast import If, Lit

    with pytest.raises(EvalError):
        interp.eval(If(Lit(3), Lit(1), Lit(2)), {})


def test_runtime_prim_error_surfaces():
    src = "module M where\n\nf xs = head xs\n"
    with pytest.raises(EvalError):
        run(src, "f", ())


def test_fuel_bounds_divergence():
    src = "module M where\n\nloop x = loop x\n"
    with pytest.raises(EvalError) as exc:
        run(src, "loop", 0, fuel=1000)
    assert "fuel" in str(exc.value)


def test_wrong_arity_call_raises():
    lp = load_program("module M where\n\nf x = x\n")
    with pytest.raises(EvalError):
        Interpreter(lp).call("f", [1, 2])


def test_step_counter_increments():
    lp = load_program("module M where\n\nf x = x + 1\n")
    interp = Interpreter(lp)
    interp.call("f", [1])
    assert interp.steps > 0
