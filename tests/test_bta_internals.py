"""Analysis internals: fixpoint machinery, error paths, edge cases."""

import pytest

from repro.bt.analysis import (
    BTAError,
    analyse_module,
    analyse_program,
    most_general_scheme,
)
from repro.bt.bt import D, S, var
from repro.bt.scheme import instantiate
from repro.bt.graph import ConstraintGraph
from repro.bt.bttypes import BTUnifier
from repro.modsys.program import load_program


def test_most_general_scheme_shape():
    s = most_general_scheme(2)
    assert len(s.args) == 2
    assert s.edges == frozenset()
    assert s.dyn == frozenset()
    assert s.unfold == 3
    assert s.nslots == 4


def test_most_general_scheme_zero_arity():
    s = most_general_scheme(0)
    assert s.args == ()
    assert s.nslots == 2


def test_most_general_scheme_instantiates():
    g = ConstraintGraph()
    u = BTUnifier(g)
    args, res, slot_map = instantiate(most_general_scheme(2), g, u)
    assert len(args) == 2
    # The two argument skeletons are distinct fresh variables.
    assert args[0].id != args[1].id


def test_fixpoint_converges_on_deep_mutual_recursion():
    # Three mutually recursive functions, several iterations needed.
    src = (
        "module M where\n\n"
        "a n x = if n == 0 then x else b (n - 1) (x + 1)\n"
        "b n x = if n == 0 then x * 2 else c (n - 1) x\n"
        "c n x = if n == 0 then x + 3 else a (n - 1) (x * x)\n"
    )
    schemes = analyse_program(load_program(src)).schemes
    for name in "abc":
        sol = schemes[name].solve_symbolic()
        assert str(sol[schemes[name].unfold]) == "t"
        # result absorbs both inputs through the cycle
        assert sol[schemes[name].res.bt].params == frozenset({"t", "u"})


def test_zero_arity_recursive_definition():
    # An infinitely-static CAF is accepted by the analysis (running it
    # would diverge, as would the program itself).
    schemes = analyse_program(
        load_program("module M where\n\nc = 1 + c\n")
    ).schemes
    assert schemes["c"].args == ()


def test_shape_error_reported_with_definition_name():
    src = "module M where\n\nbad x = if null x then 0 else x + 1\n"
    with pytest.raises(BTAError) as exc:
        analyse_program(load_program(src))
    assert "bad" in str(exc.value)


def test_higher_order_shape_error():
    src = "module M where\n\nbad f = f @ f\n"
    with pytest.raises(BTAError):
        analyse_program(load_program(src))


def test_analysis_results_hashable_and_stable():
    src = "module M where\n\nf x y = x + y\n"
    s1 = analyse_program(load_program(src)).schemes["f"]
    s2 = analyse_program(load_program(src)).schemes["f"]
    assert s1 == s2
    assert hash(s1) == hash(s2)


def test_force_residual_only_affects_named_functions():
    src = "module M where\n\nf x = x + 1\ng x = f x\n"
    pa = analyse_program(load_program(src), force_residual={"f"})
    f_sol = pa.schemes["f"].solve_symbolic()
    g_sol = pa.schemes["g"].solve_symbolic()
    assert f_sol[pa.schemes["f"].unfold] == D
    # g is not forced: its unfold stays static...
    assert g_sol[pa.schemes["g"].unfold] == S
    # ...but its result is dynamic because f's is.
    assert g_sol[pa.schemes["g"].res.bt] == D


def test_lambda_annotations_carry_types():
    from repro.anno.ast import ALam, walk_aexpr
    from repro.bt.bttypes import BTTFun

    src = "module M where\n\ngo k xs = (\\x -> x + k) @ (1 + 2)\n"
    pa = analyse_program(load_program(src))
    body = pa.annotated.module("M").find("go").body
    lams = [e for e in walk_aexpr(body) if isinstance(e, ALam)]
    assert len(lams) == 1
    assert isinstance(lams[0].type, BTTFun)
    assert lams[0].free == ("k",)
    assert lams[0].label == "go.lam1"


def test_annotated_call_bt_args_match_callee_params():
    from repro.anno.ast import ACall, walk_aexpr

    src = (
        "module M where\n\n"
        "power n x = if n == 1 then x else x * power (n - 1) x\n"
        "cube y = power 3 y\n"
    )
    pa = analyse_program(load_program(src))
    cube = pa.annotated.module("M").find("cube")
    calls = [e for e in walk_aexpr(cube.body) if isinstance(e, ACall)]
    assert len(calls) == 1
    assert len(calls[0].bt_args) == len(
        pa.annotated.module("M").find("power").bt_params
    )
    # n = 3 is static; x = y has cube's own parameter binding time.
    assert calls[0].bt_args[0] == S
    assert calls[0].bt_args[1] == var("t")
