"""The resilient serve client: wire deadlines, reconnect + retry,
backpressure backoff, and the circuit breaker.

Every test drives a real :class:`~repro.serve.client.ServeClient` over
a real unix socket against a *scripted* fake daemon, so the faults are
exact: an EOF is a genuine EOF, a timeout is a genuinely silent socket.
Sleep, jitter and the breaker clock are injected, so nothing here waits
on wall-clock backoff.
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.serve import protocol
from repro.serve.client import (
    CircuitBreaker,
    CircuitOpen,
    RetryPolicy,
    ServeClient,
    ServeClientError,
    ServeTimeout,
)


class _FakeDaemon:
    """A scripted unix-socket server.  Each received request line pops
    the next step from the shared script (default: answer ``ok``):

    - ``("ok",)``              answer a normal ok response;
    - ``("close",)``           close the connection without answering;
    - ``("garbage",)``         answer a non-JSON line;
    - ``("sleep", seconds)``   stall, then answer ok (a wedged handler);
    - ``("error", code)``      answer a protocol error response.

    Received request docs are recorded for wire-format assertions.
    """

    def __init__(self, path, script=()):
        self.path = path
        self.script = list(script)
        self.received = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(8)
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _next_step(self):
        with self._lock:
            return self.script.pop(0) if self.script else ("ok",)

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        rfile = conn.makefile("rb")
        try:
            for line in rfile:
                doc = json.loads(line)
                with self._lock:
                    self.received.append(doc)
                step = self._next_step()
                if step[0] == "close":
                    return
                if step[0] == "garbage":
                    conn.sendall(b"certainly not json\n")
                    continue
                if step[0] == "sleep":
                    # Interruptible so stop() never waits out the stall.
                    if self._stop.wait(step[1]):
                        return
                if step[0] == "error":
                    response = protocol.error_response(
                        doc.get("op", "?"), step[1], "injected"
                    )
                else:
                    response = protocol.ok_response(
                        doc.get("op", "?"), doc.get("id")
                    )
                conn.sendall(protocol.encode(response))
        except (OSError, ValueError):
            return
        finally:
            for obj in (rfile, conn):
                try:
                    obj.close()
                except OSError:
                    pass

    def stop(self):
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass


@pytest.fixture
def fake_daemon(tmp_path):
    daemons = []

    def make(script=()):
        path = str(tmp_path / ("fake%d.sock" % len(daemons)))
        daemon = _FakeDaemon(path, script)
        daemons.append(daemon)
        return daemon

    yield make
    for daemon in daemons:
        daemon.stop()


def _noretry(**overrides):
    """A retry policy that never sleeps for real and never jitters,
    recording the delays it would have waited."""
    slept = []
    kw = dict(
        attempts=4, sleep=slept.append, rng=lambda: 0.0, backoff_base=0.05
    )
    kw.update(overrides)
    return RetryPolicy(**kw), slept


# ---------------------------------------------------------------------------
# close(): idempotent and never-raising (satellite).
# ---------------------------------------------------------------------------


def test_close_is_idempotent_and_never_raises(fake_daemon):
    daemon = fake_daemon()
    client = ServeClient.connect(socket_path=daemon.path)
    assert client.ping()["ok"]
    client.close()
    client.close()  # second close: no-op, no error
    assert client._sock is None

    # Close after the *daemon* dropped the connection (half-dead socket).
    daemon2 = fake_daemon([("close",)])
    client2 = ServeClient.connect(socket_path=daemon2.path)
    with pytest.raises(ServeClientError):
        client2.ping()
    client2.close()
    client2.close()

    # Close on a client that never had a socket.
    ServeClient(None, "nowhere").close()


def test_context_manager_closes(fake_daemon):
    daemon = fake_daemon()
    with ServeClient.connect(socket_path=daemon.path) as client:
        assert client.ping()["ok"]
    assert client._sock is None
    client.close()  # still fine after __exit__


# ---------------------------------------------------------------------------
# Wire deadlines: a wedged daemon raises ServeTimeout, promptly.
# ---------------------------------------------------------------------------


def test_wedged_daemon_raises_servetimeout_within_deadline(fake_daemon):
    daemon = fake_daemon([("sleep", 30.0)])
    client = ServeClient.connect(
        socket_path=daemon.path, request_timeout=0.3
    )
    started = time.monotonic()
    with pytest.raises(ServeTimeout):
        client.ping()
    elapsed = time.monotonic() - started
    assert elapsed < 5.0  # the deadline fired, not the stall
    assert client.stats["timeouts"] == 1
    # The stream is desynchronised: the socket was dropped, and the
    # next request transparently reconnects.
    assert client._sock is None
    assert client.ping()["ok"]
    assert client.stats["reconnects"] == 1
    client.close()


def test_per_call_timeout_overrides_client_default(fake_daemon):
    daemon = fake_daemon([("sleep", 30.0)])
    client = ServeClient.connect(
        socket_path=daemon.path, request_timeout=60.0
    )
    with pytest.raises(ServeTimeout):
        client.ping(timeout=0.2)
    client.close()


# ---------------------------------------------------------------------------
# Retry: transparent reconnect with capped exponential backoff.
# ---------------------------------------------------------------------------


def test_eof_retried_over_a_fresh_connection(fake_daemon):
    daemon = fake_daemon([("close",)])
    retry, slept = _noretry()
    client = ServeClient.connect(socket_path=daemon.path, retry=retry)
    assert client.ping()["ok"]
    assert client.stats["retries"] == 1
    assert client.stats["reconnects"] == 1
    assert slept == [pytest.approx(0.05)]  # base * 2**0, no jitter
    client.close()


def test_malformed_response_retried(fake_daemon):
    daemon = fake_daemon([("garbage",)])
    retry, _ = _noretry()
    client = ServeClient.connect(socket_path=daemon.path, retry=retry)
    assert client.ping()["ok"]
    assert client.stats["retries"] == 1
    client.close()


def test_no_retry_by_default(fake_daemon):
    daemon = fake_daemon([("close",)])
    client = ServeClient.connect(socket_path=daemon.path)
    with pytest.raises(ServeClientError):
        client.ping()
    assert client.stats["retries"] == 0
    client.close()


def test_shutdown_is_never_retried(fake_daemon):
    daemon = fake_daemon([("close",)])
    retry, slept = _noretry()
    client = ServeClient.connect(socket_path=daemon.path, retry=retry)
    with pytest.raises(ServeClientError):
        client.shutdown()
    assert slept == []
    client.close()


def test_retry_budget_exhausted_raises_the_last_fault(fake_daemon):
    daemon = fake_daemon([("close",)] * 10)
    retry, slept = _noretry(attempts=3)
    client = ServeClient.connect(socket_path=daemon.path, retry=retry)
    with pytest.raises(ServeClientError):
        client.ping()
    assert client.stats["requests"] == 3  # total tries, first included
    assert len(slept) == 2
    client.close()


def test_retry_delay_schedule_caps_and_jitters():
    policy = RetryPolicy(
        attempts=8, backoff_base=1.0, backoff_cap=3.0, jitter=0.0
    )
    assert [policy.delay(n) for n in range(4)] == [1.0, 2.0, 3.0, 3.0]
    jittered = RetryPolicy(
        backoff_base=1.0, backoff_cap=8.0, jitter=0.5, rng=lambda: 1.0
    )
    # Full jitter draw shrinks the delay by half, never grows it.
    assert jittered.delay(1) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Backpressure: rejected is retried with backoff, and is *healthy*.
# ---------------------------------------------------------------------------


def test_rejected_backed_off_and_retried_not_a_breaker_failure(fake_daemon):
    daemon = fake_daemon(
        [("error", protocol.ERR_REJECTED), ("ok",)]
    )
    retry, slept = _noretry(rng=lambda: 1.0)  # full jitter draw
    breaker = CircuitBreaker(failure_threshold=1)
    client = ServeClient.connect(
        socket_path=daemon.path, retry=retry, breaker=breaker
    )
    assert client.specialise("power", {"n": 3})["ok"]
    assert client.stats["rejected"] == 1
    assert client.stats["retries"] == 1
    assert slept == [pytest.approx(0.025)]  # jitter shrank the base delay
    # A daemon shedding load answered: the breaker saw a *success*.
    assert breaker.state == "closed"
    client.close()


def test_crash_response_retried_when_idempotent(fake_daemon):
    daemon = fake_daemon([("error", protocol.ERR_CRASH), ("ok",)])
    retry, _ = _noretry()
    client = ServeClient.connect(socket_path=daemon.path, retry=retry)
    assert client.specialise("power", {"n": 3})["ok"]
    assert client.stats["retries"] == 1
    client.close()


def test_shutting_down_returned_as_is(fake_daemon):
    daemon = fake_daemon([("error", protocol.ERR_SHUTTING_DOWN)])
    retry, slept = _noretry()
    client = ServeClient.connect(socket_path=daemon.path, retry=retry)
    response = client.specialise("power", {"n": 3})
    assert not response["ok"]
    assert response["error"]["code"] == protocol.ERR_SHUTTING_DOWN
    assert slept == []  # the draining daemon asked us to go away
    client.close()


# ---------------------------------------------------------------------------
# The circuit breaker.
# ---------------------------------------------------------------------------


def test_breaker_state_machine_with_fake_clock():
    now = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=2, reset_timeout=10.0, clock=lambda: now[0]
    )
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open" and not breaker.allow()
    now[0] = 9.9
    assert breaker.state == "open"
    now[0] = 10.0
    assert breaker.state == "half-open" and breaker.allow()
    # A failed half-open probe re-opens for a *full* fresh cooldown.
    breaker.record_failure()
    assert breaker.state == "open"
    now[0] = 19.9
    assert breaker.state == "open"
    now[0] = 20.0
    assert breaker.state == "half-open"
    breaker.record_success()
    assert breaker.state == "closed"
    breaker.record_failure()  # one failure after reset: still closed
    assert breaker.state == "closed"


def test_breaker_opens_after_transport_failures_and_fails_fast(fake_daemon):
    daemon = fake_daemon([("close",), ("close",)])
    now = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=2, reset_timeout=10.0, clock=lambda: now[0]
    )
    client = ServeClient.connect(socket_path=daemon.path, breaker=breaker)
    for _ in range(2):
        with pytest.raises(ServeClientError):
            client.ping()
    assert breaker.state == "open"
    wire_requests = client.stats["requests"]
    with pytest.raises(CircuitOpen):
        client.ping()
    assert client.stats["breaker_fastfail"] == 1
    assert client.stats["requests"] == wire_requests  # no wire traffic
    # Cooldown elapses; the half-open probe succeeds and closes it.
    now[0] = 10.0
    assert client.ping()["ok"]
    assert breaker.state == "closed"
    client.close()


def test_breaker_validates_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)


# ---------------------------------------------------------------------------
# Wire format: empty static_args ride the wire; omission omits (satellite).
# ---------------------------------------------------------------------------


def test_empty_static_args_ride_the_wire_like_any_value(fake_daemon):
    daemon = fake_daemon()
    client = ServeClient.connect(socket_path=daemon.path)
    client.specialise("goal", {})
    client.specialise("goal")
    client.specialise("goal", {"n": 3})
    sent = [d for d in daemon.received if d["op"] == "specialise"]
    assert sent[0]["static_args"] == {}
    assert "static_args" not in sent[1]
    assert sent[2]["static_args"] == {"n": 3}
    client.close()


# ---------------------------------------------------------------------------
# Construction and reconnection plumbing.
# ---------------------------------------------------------------------------


def test_wait_ready_forwards_resilience_kwargs(fake_daemon):
    daemon = fake_daemon()
    retry, _ = _noretry()
    breaker = CircuitBreaker()
    client = ServeClient.wait_ready(
        socket_path=daemon.path,
        request_timeout=1.5,
        retry=retry,
        breaker=breaker,
    )
    assert client.retry is retry
    assert client.breaker is breaker
    assert client.request_timeout == 1.5
    client.close()


def test_bare_socket_client_cannot_reconnect(fake_daemon):
    daemon = fake_daemon([("close",)])
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(daemon.path)
    client = ServeClient(sock, "unix://%s" % daemon.path)
    with pytest.raises(ServeClientError):
        client.ping()
    with pytest.raises(ServeClientError, match="bare"):
        client.ping()  # reconnect impossible: no parameters kept
    client.close()
