"""Regenerate the seed-pinned differential-testing corpus.

Each ``seedNNNN.json`` pins one generated program (see
``repro.check.gen``) together with its golden residuals — the
``pretty_program`` text the genext specialiser produced for every
static valuation — and the interpreter's answer for every
(valuation, dynamic input) pair.  ``tests/test_check.py`` re-derives
all of that on every run and insists on byte-identical residuals: any
behavioural drift in the analysis, the cogen, the specialiser, or the
pretty-printer shows up as a corpus diff that must be reviewed (and,
if intended, re-pinned by re-running this script).

Usage::

    PYTHONPATH=src python tests/corpus/regenerate.py

Seeds are fixed below; changing them invalidates the corpus on
purpose.
"""

import json
import os
import sys

CORPUS_SCHEMA = "repro.check.corpus/v1"
SEEDS = list(range(25))
CORPUS_DIR = os.path.dirname(os.path.abspath(__file__))


def pin_case(seed):
    from repro.bt.analysis import analyse_program
    from repro.check.gen import generate_case
    from repro.check.diff import DIFF_FUEL
    from repro.genext.cogen import cogen_program
    from repro.genext.engine import specialise
    from repro.genext.link import link_genexts
    from repro.interp import run_program
    from repro.lang.pretty import pretty_program
    from repro.modsys.program import load_program

    case = generate_case(seed)
    linked = load_program(case.source)
    gp = link_genexts(cogen_program(analyse_program(linked)))

    residuals = []
    values = []
    for valuation in case.static_variants:
        result = specialise(gp, case.goal, dict(valuation))
        residuals.append(pretty_program(result.program))
        values.append(
            [
                run_program(
                    linked,
                    case.goal,
                    case.full_args(valuation, vec),
                    fuel=DIFF_FUEL,
                )
                for vec in case.dyn_inputs
            ]
        )

    return {
        "schema": CORPUS_SCHEMA,
        "seed": case.seed,
        "goal": case.goal,
        "params": list(case.params),
        "static_args": dict(case.static_args),
        "static_variants": [dict(v) for v in case.static_variants],
        "dyn_inputs": [list(v) for v in case.dyn_inputs],
        "source": case.source,
        "residuals": residuals,
        "values": values,
    }


def main():
    for seed in SEEDS:
        doc = pin_case(seed)
        path = os.path.join(CORPUS_DIR, "seed%04d.json" % seed)
        with open(path, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        print("pinned", path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
