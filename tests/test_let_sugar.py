"""`let` sugar: parses to a beta-redex, specialises by unfolding."""

import pytest

import repro
from repro.lang.ast import App, Lam, Lit, Prim, Var
from repro.lang.parser import parse_expr
from repro.interp import run_program
from repro.modsys.program import load_program


def test_let_desugars_to_application():
    e = parse_expr("let x = 1 in x + 2")
    assert e == App(Lam("x", Prim("+", (Var("x"), Lit(2)))), Lit(1))


def test_let_nests():
    e = parse_expr("let x = 1 in let y = 2 in x + y")
    assert isinstance(e, App) and isinstance(e.fun.body, App)


def test_let_binding_shadows():
    src = "module M where\n\nf x = let x = x + 1 in x * 2\n"
    assert run_program(load_program(src), "f", [5]) == 12


def test_let_runs():
    src = "module M where\n\nf a = let b = a * a in b + b\n"
    assert run_program(load_program(src), "f", [3]) == 18


def test_let_specialises_away_when_static():
    gp = repro.compile_genexts(
        "module M where\n\nf k x = let kk = k * k in kk * x\n"
    )
    result = repro.specialise(gp, "f", {"k": 4})
    text = repro.pretty_program(result.program)
    assert "16 * x" in text
    assert result.run(2) == 32


def test_let_over_dynamic_value_duplicates_not_computes():
    # A dynamic let unfolds the lambda, substituting the residual code.
    gp = repro.compile_genexts(
        "module M where\n\nf x = let y = x + 1 in y * y\n"
    )
    result = repro.specialise(gp, "f", {})
    assert result.run(3) == 16


def test_let_type_checked():
    from repro.types import TypeError_, infer_program

    with pytest.raises(TypeError_):
        infer_program(
            load_program("module M where\n\nf a = let b = a in b && true\nmain x = f (x + 1)\n")
        )
