"""Module system tests: graphs, topological order, loaders."""

import os

import pytest

from repro.lang.errors import LangError, ValidationError
from repro.modsys.graph import CyclicImportError, ModuleGraph
from repro.modsys.program import (
    link_program,
    load_program,
    load_program_dir,
    relink_with,
)
from repro.lang.parser import parse_module, parse_program


def graph(**imports):
    return ModuleGraph({k: tuple(v) for k, v in imports.items()})


def test_topo_order_respects_imports():
    g = graph(A=[], B=["A"], C=["A", "B"])
    order = g.topo_order()
    assert order.index("A") < order.index("B") < order.index("C")


def test_topo_order_is_deterministic():
    g1 = graph(A=[], B=["A"], C=["A"])
    g2 = graph(A=[], B=["A"], C=["A"])
    assert g1.topo_order() == g2.topo_order()


def test_cycle_detection_reports_the_cycle():
    g = graph(A=["B"], B=["C"], C=["A"])
    with pytest.raises(CyclicImportError) as exc:
        g.topo_order()
    assert set(exc.value.cycle) >= {"A", "B", "C"}


def test_self_import_is_a_cycle():
    with pytest.raises(CyclicImportError):
        graph(A=["A"]).topo_order()


def test_unknown_import_rejected():
    with pytest.raises(LangError):
        graph(A=["Nowhere"])


def test_reachability_is_transitive():
    g = graph(A=[], B=["A"], C=["B"])
    assert g.reachable_from("C") == {"A", "B"}
    assert g.reachable_from("A") == frozenset()
    assert g.imports_transitively("C", "A")
    assert not g.imports_transitively("A", "C")


def test_dominance_reduction_drops_imported_modules():
    # C imports A: a combination {A, C} reduces to {C} (Sec. 5: "remove
    # any which are imported into others").
    g = graph(A=[], B=["A"], C=["A"])
    assert g.reduce_by_dominance({"A", "C"}) == frozenset({"C"})
    assert g.reduce_by_dominance({"B", "C"}) == frozenset({"B", "C"})
    assert g.reduce_by_dominance({"A"}) == frozenset({"A"})
    assert g.reduce_by_dominance(set()) == frozenset()


def test_dominance_reduction_chain():
    g = graph(A=[], B=["A"], C=["B"])
    assert g.reduce_by_dominance({"A", "B", "C"}) == frozenset({"C"})


# -- program loading ---------------------------------------------------------


def test_link_program_orders_and_resolves():
    lp = load_program(
        "module B where\nimport A\n\ng x = f x\n"
        "module A where\n\nf x = x\n"
    )
    assert lp.topo_order == ("A", "B")
    assert lp.symbols.module_of("g") == "B"
    assert lp.symbols.arity_of("f") == 1


def test_find_def():
    lp = load_program("module A where\n\nf x = x\n")
    module, d = lp.find_def("f")
    assert module.name == "A" and d.name == "f"


def test_load_program_dir(tmp_path):
    (tmp_path / "A.mod").write_text("module A where\n\nf x = x\n")
    (tmp_path / "B.mod").write_text("module B where\nimport A\n\ng x = f x\n")
    lp = load_program_dir(str(tmp_path))
    assert set(lp.program.module_names()) == {"A", "B"}


def test_load_program_dir_name_mismatch(tmp_path):
    (tmp_path / "A.mod").write_text("module Wrong where\n\nf x = x\n")
    with pytest.raises(ValidationError):
        load_program_dir(str(tmp_path))


def test_load_program_dir_multiple_modules_per_file_rejected(tmp_path):
    (tmp_path / "A.mod").write_text(
        "module A where\n\nf x = x\nmodule B where\n\ng x = x\n"
    )
    with pytest.raises(ValidationError):
        load_program_dir(str(tmp_path))


def test_relink_with_replaces_module():
    lp = load_program("module A where\n\nf x = x\n")
    new_a = parse_module("module A where\n\nf x = x + 1\n")
    lp2 = relink_with(lp, [new_a])
    assert lp2.module("A").defs[0].body != lp.module("A").defs[0].body


def test_relink_with_adds_module():
    lp = load_program("module A where\n\nf x = x\n")
    new_b = parse_module("module B where\nimport A\n\ng x = f x\n")
    lp2 = relink_with(lp, [new_b])
    assert lp2.topo_order == ("A", "B")


def test_cyclic_program_rejected_at_link():
    src = (
        "module A where\nimport B\n\nf x = x\n"
        "module B where\nimport A\n\ng x = x\n"
    )
    with pytest.raises(CyclicImportError):
        load_program(src)
