"""Every example script must run to completion and print sane output."""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location("example_" + name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = io.StringIO()
    with redirect_stdout(out):
        module.main()
    return out.getvalue()


def test_examples_directory_has_at_least_three_scripts():
    scripts = [f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")]
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts


def test_quickstart():
    out = run_example("quickstart.py")
    assert "power : forall t,u. Nat^t -> Nat^u -> Nat^t|u" in out
    assert "power x = x * (x * x)" in out
    assert "residual power(2) = 8" in out
    assert "residual power(10) = 1024" in out


def test_library_specialisation():
    out = run_example("library_specialisation.py")
    assert "Shipped artefacts:" in out
    assert "Lists.genext.py" in out
    assert "scale([1,2,3]) = (10, 20, 30)" in out
    assert "firstk([7,8,9]) = (7, 8)" in out
    assert "sumsq = 30" in out


def test_futamura_compiler():
    out = run_example("futamura_compiler.py")
    assert out.count("OK") >= 4
    assert "BUG" not in out
    assert "outputs agree: True" in out


def test_modular_residual():
    out = run_example("modular_residual.py")
    assert "module PowerTwice where" in out
    assert "main(2) = 2^9 = 512" in out
    assert "holds 1 shared specialisation(s)" in out


def test_expr_compiler():
    out = run_example("expr_compiler.py")
    assert "run env = (head env + 1) * (head (tail env) + 2)" in out
    assert "run = 42" in out
    assert "fn([6]) = 37" in out


def test_fir_filter():
    out = run_example("fir_filter.py")
    assert "fir (1, 2, 1) (1, 2, 3, 4, 5, 6) = (8, 12, 16, 20)" in out
    assert "fn((10, 20, 30)) = (50, 90)" in out


def test_modular_interpreter():
    out = run_example("modular_interpreter.py")
    assert "residual modules: Alu, Machine" in out
    assert "run(200) = 255" in out
    assert "run(99) = 7" in out


def test_functor_sort():
    out = run_example("functor_sort.py")
    assert "asc_isort([3,1,2])  = (1, 2, 3)" in out
    assert "desc_isort([3,1,2]) = (3, 2, 1)" in out
    assert "rejected, as it must be" in out
    assert "keyed_isort(...) = (('pair', 1, 10)" in out


def test_pattern_matcher():
    out = run_example("pattern_matcher.py")
    assert "BUG" not in out
    assert out.count("OK") == 5
    assert "one per pattern suffix" in out
    assert "starts with '#': True" in out
