"""Online-specialiser tests: correctness, and the contrast with offline."""

import pytest

import repro
from repro.bench.generators import power_source
from repro.interp import run_program
from repro.modsys.program import load_program
from repro.specialiser.online import OnlineSpecialiser, fully_static, online_specialise
from repro.genext import runtime as rt
from repro.lang.ast import Var


def test_fully_static_predicate():
    assert fully_static(rt.SBase(1))
    assert fully_static(rt.SList((rt.SBase(1),)))
    assert fully_static(rt.SPair(rt.SBase(1), rt.SBase(2)))
    assert not fully_static(rt.DCode(Var("x")))
    assert not fully_static(rt.SList((rt.DCode(Var("x")),)))


def test_all_static_goal_evaluates():
    result = online_specialise(power_source(), "power", {"n": 4, "x": 3})
    assert result.run() == 81


def test_power_static_base_matches_offline_shape():
    result = online_specialise(power_source(), "power", {"x": 2})
    assert result.run(10) == 1024
    assert result.stats["specialisations"] == 1  # the memoised loop


def test_power_static_exponent_residualises_polyvariantly():
    # Here online is WEAKER than offline: with x dynamic the call is not
    # fully static, so instead of unfolding to x * (x * x) we get a
    # chain of residual functions, one per exponent value.
    result = online_specialise(power_source(), "power", {"n": 3})
    assert result.run(2) == 8
    assert result.stats["specialisations"] == 3
    gp = repro.compile_genexts(power_source())
    offline = repro.specialise(gp, "power", {"n": 3})
    assert offline.stats["specialisations"] == 0  # fully unfolded


def test_online_equivalence_on_corpus(corpus_case):
    case = corpus_case
    if case.get("force_residual"):
        pytest.skip("online has no hand annotations")
    linked = load_program(case["source"])
    spec = OnlineSpecialiser(linked)
    result = spec.specialise(case["goal"], case["static"])
    _, d = linked.find_def(case["goal"])
    for dyn in case["dyn_inputs"]:
        dyn_iter = iter(dyn)
        args = [
            case["static"][p] if p in case["static"] else next(dyn_iter)
            for p in d.params
        ]
        assert result.run(*dyn) == run_program(linked, case["goal"], args)


def test_online_machine_interpreter():
    from repro.bench.generators import machine_interpreter_source
    from repro.lang.prims import make_pair

    prog = (make_pair(1, 2), make_pair(0, 10), make_pair(2, 4), make_pair(1, 3))
    result = online_specialise(
        machine_interpreter_source(), "run", {"prog": prog}
    )
    linked = load_program(machine_interpreter_source())
    for acc in (0, 1, 5):
        assert result.run(acc) == run_program(linked, "run", [prog, acc])


def test_online_higher_order():
    src = (
        "module A where\n\n"
        "map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)\n"
        "module B where\nimport A\n\n"
        "scale k xs = map (\\x -> k * x) xs\n"
    )
    result = online_specialise(src, "scale", {"k": 5})
    assert result.run((1, 2)) == (5, 10)


def test_online_residual_is_well_formed():
    result = online_specialise(power_source(), "power", {"n": 3})
    from repro.types import infer_program

    infer_program(result.linked)
    result.linked.graph.check_acyclic()


def test_online_unknown_param_rejected():
    with pytest.raises(rt.SpecError):
        online_specialise(power_source(), "power", {"zz": 1})


def test_online_strategies_agree():
    from repro.residual.normalise import normalise_program

    bfs = online_specialise(power_source(), "power", {"x": 3}, strategy="bfs")
    dfs = online_specialise(power_source(), "power", {"x": 3}, strategy="dfs")
    assert normalise_program(bfs.program, bfs.entry) == normalise_program(
        dfs.program, dfs.entry
    )
