"""Binding-time explanation tests."""

import pytest

from repro.bt.explain import explain_function
from repro.modsys.program import load_program

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"


@pytest.fixture(scope="module")
def power_report():
    return explain_function(load_program(POWER), "power")


def test_result_absorbs_both_parameters(power_report):
    text = power_report.why_result()
    assert "absorbs t because" in text
    assert "absorbs u because" in text


def test_result_path_goes_through_the_conditional(power_report):
    text = power_report.why_result()
    assert "operand of '=='" in text
    assert "result of a conditional depends on its test" in text


def test_unfold_explained_by_similix_rule(power_report):
    text = power_report.why_unfold()
    assert "Similix rule" in text
    assert "absorbs t because" in text
    assert "absorbs u because" not in text  # unfold is t, not t|u


def test_param_independence(power_report):
    # x's binding time does not absorb t: parameters stay principal.
    assert power_report.why_param_absorbs("x", "t") is None
    assert power_report.why_param_absorbs("n", "u") is None


def test_static_result_reports_nothing():
    report = explain_function(
        load_program("module M where\n\nconst2 x = 2\n"), "const2"
    )
    assert report.why_result() == "(static: nothing flows here)"


def test_forced_residual_explained_by_d():
    report = explain_function(
        load_program(POWER), "power", force_residual={"power"}
    )
    text = report.why_unfold()
    assert "absorbs D because" in text


def test_well_formedness_reason_appears():
    src = (
        "module M where\n\n"
        "f c xs ys = if c then xs else tail ys\n"
    )
    report = explain_function(load_program(src), "f")
    text = report.why_result()
    assert "conditional" in text


def test_dot_export(power_report):
    from repro.bt.explain import to_dot

    dot = to_dot(power_report)
    assert dot.startswith("digraph bt {")
    assert dot.rstrip().endswith("}")
    assert '[label="t", shape=box]' in dot
    assert '[label="result", shape=doublecircle]' in dot
    assert "operand of '=='" in dot
    # Valid-ish dot: no raw negative ids.
    assert "n-1" not in dot


def test_dot_export_truncates():
    from repro.bt.explain import to_dot

    dot = to_dot(
        explain_function(load_program(POWER), "power"), max_nodes=3
    )
    assert "truncated" in dot


def test_call_argument_reason_appears():
    src = (
        "module M where\n\n"
        "len xs = if null xs then 0 else 1 + len (tail xs)\n"
        "use ys = len ys\n"
    )
    report = explain_function(load_program(src), "use")
    text = report.why_result()
    assert "argument 1 of 'len'" in text
