"""CLI driver tests (via ``main(argv)``, no subprocesses)."""

import os

import pytest

from repro.cli import _parse_value, main

POWER = "module Power where\n\npower n x = if n == 1 then x else x * power (n - 1) x\n"
MAIN = "module Main where\nimport Power\n\ncube y = power 3 y\n"


@pytest.fixture
def project(tmp_path):
    (tmp_path / "Power.mod").write_text(POWER)
    (tmp_path / "Main.mod").write_text(MAIN)
    return str(tmp_path)


def test_parse_value():
    assert _parse_value("42") == 42
    assert _parse_value("true") is True
    assert _parse_value("false") is False
    assert _parse_value("[1,2,3]") == (1, 2, 3)
    assert _parse_value("[]") == ()


def test_analyze_writes_interfaces(project, capsys):
    assert main(["analyze", project]) == 0
    out = capsys.readouterr().out
    assert "Power" in out and "analysed" in out
    assert os.path.exists(os.path.join(project, "Power.bti"))
    # Second run: everything up to date.
    main(["analyze", project])
    out = capsys.readouterr().out
    assert "up to date" in out


def test_cogen_writes_genexts(project, capsys):
    assert main(["cogen", project]) == 0
    assert os.path.exists(os.path.join(project, "Power.genext.py"))
    assert os.path.exists(os.path.join(project, "Main.genext.py"))


def test_specialise_prints_residual(project, capsys):
    assert main(["specialise", project, "cube"]) == 0
    out = capsys.readouterr().out
    assert "cube y = y * (y * y)" in out


def test_specialise_with_static_binding(project, capsys):
    assert main(["specialise", project, "power", "n=4"]) == 0
    out = capsys.readouterr().out
    assert "x * (x * (x * x))" in out


def test_specialise_writes_modules(project, tmp_path, capsys):
    out_dir = str(tmp_path / "out")
    assert main(["specialise", project, "power", "x=2", "-o", out_dir]) == 0
    files = sorted(os.listdir(out_dir))
    assert files == ["Power.mod"]


def test_specialise_dfs_strategy(project, capsys):
    assert main(["specialise", project, "power", "x=2", "--strategy", "dfs"]) == 0


def test_specialise_force_residual(project, capsys):
    assert main(["specialise", project, "cube", "--residual", "power"]) == 0
    out = capsys.readouterr().out
    assert "power_" in out  # a residual power function exists


def test_run(project, capsys):
    assert main(["run", project, "cube", "3"]) == 0
    assert capsys.readouterr().out.strip() == "27"


def test_run_with_list_argument(tmp_path, capsys):
    (tmp_path / "M.mod").write_text(
        "module M where\n\n"
        "sum xs = if null xs then 0 else head xs + sum (tail xs)\n"
    )
    assert main(["run", str(tmp_path), "sum", "[1,2,3]"]) == 0
    assert capsys.readouterr().out.strip() == "6"


def test_show_prints_schemes_and_annotations(project, capsys):
    assert main(["show", project]) == 0
    out = capsys.readouterr().out
    assert "power : forall t,u." in out
    assert "power {t u} n x =t" in out


def test_bad_binding_syntax(project):
    with pytest.raises(SystemExit):
        main(["specialise", project, "power", "n3"])


def test_specialise_with_optimise_flag(tmp_path, capsys):
    (tmp_path / "M.mod").write_text(
        "module M where\n\n"
        "dbl x = (x + 1) * (x + 1)\n"
        "f k x = dbl (x + k)\n"
    )
    assert main(["specialise", str(tmp_path), "f", "k=0", "--optimise"]) == 0
    out = capsys.readouterr().out
    # CSE introduced a let (a beta-redex).
    assert "\\s" in out or "@" in out


def test_stdlib_workflow_via_cli(tmp_path, capsys):
    import shutil

    from repro.stdlib import MODULES, stdlib_dir

    for name in MODULES:
        shutil.copy(
            os.path.join(stdlib_dir(), name + ".mod"), str(tmp_path)
        )
    assert main(["analyze", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "map :" in out
    assert main(["specialise", str(tmp_path), "pow", "n=3"]) == 0
    out = capsys.readouterr().out
    assert "x * (x * (x * 1))" in out or "x * (x * x)" in out


def test_explain(project, capsys):
    assert main(["explain", project, "power"]) == 0
    out = capsys.readouterr().out
    assert "the result of power absorbs t because" in out
    assert "Similix rule" in out
