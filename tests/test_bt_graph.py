"""Constraint-graph tests: least solutions and interface projection."""

from repro.bt.graph import ConstraintGraph, D_NODE


def test_fresh_variables_are_distinct():
    g = ConstraintGraph()
    assert g.fresh() != g.fresh()


def test_solve_unconstrained_variable_is_static():
    g = ConstraintGraph()
    v = g.fresh()
    sol = g.solve([])
    assert sol[v] == (frozenset(), False)


def test_parameter_reaches_itself():
    g = ConstraintGraph()
    p = g.fresh()
    sol = g.solve([p])
    assert sol[p] == (frozenset({p}), False)


def test_edge_propagates_parameter():
    g = ConstraintGraph()
    p, v = g.fresh(), g.fresh()
    g.edge(p, v)
    sol = g.solve([p])
    assert sol[v] == (frozenset({p}), False)


def test_lub_is_two_edges():
    g = ConstraintGraph()
    p, q, r = g.fresh(), g.fresh(), g.fresh()
    g.edge(p, r)
    g.edge(q, r)
    sol = g.solve([p, q])
    assert sol[r] == (frozenset({p, q}), False)


def test_dynamic_absorbs():
    g = ConstraintGraph()
    p, v = g.fresh(), g.fresh()
    g.edge(p, v)
    g.force_dynamic(v)
    sol = g.solve([p])
    assert sol[v] == (frozenset(), True)
    assert sol[p] == (frozenset({p}), False)


def test_dynamic_propagates_forward():
    g = ConstraintGraph()
    a, b, c = g.fresh(), g.fresh(), g.fresh()
    g.force_dynamic(a)
    g.edge(a, b)
    g.edge(b, c)
    sol = g.solve([])
    assert sol[b][1] and sol[c][1]


def test_equate_makes_values_identical():
    g = ConstraintGraph()
    p, a, b = g.fresh(), g.fresh(), g.fresh()
    g.equate(a, b)
    g.edge(p, a)
    sol = g.solve([p])
    assert sol[a] == sol[b]


def test_cycles_are_handled():
    g = ConstraintGraph()
    p, a, b, c = g.fresh(), g.fresh(), g.fresh(), g.fresh()
    g.edge(a, b)
    g.edge(b, c)
    g.edge(c, a)
    g.edge(p, b)
    sol = g.solve([p])
    assert sol[a] == sol[b] == sol[c] == (frozenset({p}), False)


def test_closure_projects_onto_interface():
    g = ConstraintGraph()
    a, x, y, b = g.fresh(), g.fresh(), g.fresh(), g.fresh()
    # a -> x -> y -> b with x, y internal.
    g.edge(a, x)
    g.edge(x, y)
    g.edge(y, b)
    edges, dyn = g.closure([a, b])
    assert edges == frozenset({(a, b)})
    assert dyn == frozenset()


def test_closure_excludes_self_edges():
    g = ConstraintGraph()
    a, b = g.fresh(), g.fresh()
    g.equate(a, b)
    edges, dyn = g.closure([a])
    assert edges == frozenset()


def test_closure_reports_forced_dynamic_interface_vars():
    g = ConstraintGraph()
    a, x = g.fresh(), g.fresh()
    g.force_dynamic(x)
    g.edge(x, a)
    edges, dyn = g.closure([a])
    assert dyn == frozenset({a})


def test_reachable_from_d_node():
    g = ConstraintGraph()
    v = g.fresh()
    g.force_dynamic(v)
    assert v in g.reachable_from(D_NODE)
