"""The reusable worker pool: lifecycle, generation-checked kills, sharing.

:class:`~repro.pipeline.pool.WorkerPool` is the one pool-lifecycle
object behind the batch driver, the wave supervisor, and the serve
daemon.  The properties that matter: fork-once (``spawns`` stays 1 in
the steady state, across any number of supervisor runs), a hard kill
never tears down another thread's replacement executor, and a borrowed
pool survives every supervisor that uses it.
"""

import os

import pytest

import repro
from repro.api import SpecOptions
from repro.genext.batch import seed_worker_program, specialise_many
from repro.pipeline.faults import FaultPolicy, WaveSupervisor
from repro.pipeline.pool import WorkerPool

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""


def _square(payload):
    name, n = payload
    return n * n


# ---------------------------------------------------------------------------
# Lifecycle basics.
# ---------------------------------------------------------------------------


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        WorkerPool(0)


def test_lazy_spawn_and_counters():
    pool = WorkerPool(2)
    assert not pool.alive and pool.spawns == 0
    first = pool.executor()
    assert pool.alive and pool.spawns == 1
    # Idempotent: the same executor comes back, no respawn.
    assert pool.executor() is first
    assert pool.spawns == 1
    pool.shutdown()
    assert not pool.alive


def test_warm_prefers_distinct_workers():
    pool = WorkerPool(2)
    try:
        pids = pool.warm()
        assert pids  # at least one worker reported in
        assert os.getpid() not in pids  # real child processes
        assert pool.spawns == 1
    finally:
        pool.shutdown()


def test_submit_runs_in_child_process():
    pool = WorkerPool(1)
    try:
        assert pool.submit(_square, ("x", 7)).result(timeout=30) == 49
    finally:
        pool.shutdown()


def test_kill_respawns_on_next_use():
    pool = WorkerPool(1)
    try:
        pool.warm()
        pool.kill()
        assert not pool.alive and pool.kills == 1
        # Transparent respawn: the pool works again, counting a spawn.
        assert pool.submit(_square, ("x", 3)).result(timeout=30) == 9
        assert pool.spawns == 2
    finally:
        pool.shutdown()


def test_kill_is_generation_checked():
    pool = WorkerPool(1)
    try:
        stale = pool.executor()
        pool.kill(stale)  # kills: it is the current generation
        replacement = pool.executor()
        assert replacement is not stale
        pool.kill(stale)  # stale: must NOT touch the replacement
        assert pool.alive and pool.kills == 1
        pool.kill(replacement)
        assert not pool.alive and pool.kills == 2
    finally:
        pool.shutdown()


def test_kill_without_executor_is_a_noop():
    pool = WorkerPool(1)
    pool.kill()
    assert pool.kills == 0


# ---------------------------------------------------------------------------
# Sharing: supervisors borrow, owners shut down.
# ---------------------------------------------------------------------------


def test_supervisor_leaves_borrowed_pool_running():
    pool = WorkerPool(2)
    try:
        supervisor = WaveSupervisor(
            _square, jobs=2, policy=FaultPolicy(), pool=pool
        )
        done, failed = supervisor.run_wave([("a", 2), ("b", 3)])
        assert done == {"a": 4, "b": 9} and not failed
        supervisor.shutdown()
        assert pool.alive  # borrowed: shutdown() must not release it
        # And the same workers serve the next supervisor: no respawn.
        again = WaveSupervisor(
            _square, jobs=2, policy=FaultPolicy(), pool=pool
        )
        done, _ = again.run_wave([("c", 4)])
        again.shutdown()
        assert done == {"c": 16}
        assert pool.spawns == 1
    finally:
        pool.shutdown()


def test_borrowed_pool_is_used_even_for_one_job():
    # With a resident pool the cold work must go to the workers (the
    # caller's thread may not be the main thread, where serial SIGALRM
    # deadlines do not bind), even when there is just one payload.
    pool = WorkerPool(1)
    try:
        supervisor = WaveSupervisor(
            _worker_pid, jobs=1, policy=FaultPolicy(), pool=pool
        )
        done, _ = supervisor.run_wave([("who",)])
        supervisor.shutdown()
        assert done["who"] != os.getpid()
    finally:
        pool.shutdown()


def _worker_pid(payload):
    return os.getpid()


def test_batch_driver_reuses_resident_pool_across_calls(tmp_path):
    gp = repro.compile_genexts(POWER)
    seed_worker_program(gp)
    pool = WorkerPool(2)
    try:
        pool.warm()
        options = SpecOptions(cache_dir=str(tmp_path / "cache"))
        texts = []
        for wave in range(3):
            batch = specialise_many(
                gp,
                [("power", {"n": 2}), ("power", {"n": 3})],
                options.replace(
                    cache_dir=str(tmp_path / ("cache-%d" % wave))
                ),
                pool=pool,
            )
            assert batch.ok, batch.render_failures()
            texts.append(
                tuple(repro.pretty_program(r.program) for r in batch.results)
            )
        # Fork-once across every batch, and identical residuals.
        assert pool.spawns == 1
        assert len(set(texts)) == 1
    finally:
        pool.shutdown()


def test_batch_driver_without_pool_still_owns_its_lifecycle(tmp_path):
    gp = repro.compile_genexts(POWER)
    batch = specialise_many(
        gp,
        [("power", {"n": 2}), ("power", {"n": 3})],
        SpecOptions(cache_dir=str(tmp_path / "cache")),
        jobs=2,
    )
    assert batch.ok
    assert batch.stats["jobs"] == 2


# ---------------------------------------------------------------------------
# Graceful worker recycling.
# ---------------------------------------------------------------------------


def test_recycling_knobs_validate():
    with pytest.raises(ValueError):
        WorkerPool(1, max_requests_per_worker=0)
    with pytest.raises(ValueError):
        WorkerPool(1, max_worker_rss=0)


def test_maybe_recycle_noop_without_limits_or_executor():
    pool = WorkerPool(1)
    assert pool.maybe_recycle() is None  # no executor yet
    try:
        pool.executor()
        pool.note_tasks(1000)
        assert pool.maybe_recycle() is None  # no limits armed
        assert pool.recycles == 0
    finally:
        pool.shutdown()


def test_recycle_by_request_budget():
    pool = WorkerPool(2, max_requests_per_worker=2)
    try:
        first = pool.executor()
        assert pool.maybe_recycle() is None  # budget not reached
        for _ in range(4):  # jobs x max_requests_per_worker
            assert pool.submit(os.getpid).result() > 0
        assert pool.maybe_recycle() == "requests"
        assert pool.recycles == 1
        assert pool.kills == 0  # graceful, not a kill
        second = pool.executor()
        assert second is not first
        assert pool.spawns == 2
        # The fresh generation starts with a clean budget.
        assert pool.maybe_recycle() is None
    finally:
        pool.shutdown()


def test_recycle_by_rss_ceiling():
    pool = WorkerPool(1, max_worker_rss=1)  # 1 byte: any worker trips it
    try:
        assert pool.submit(os.getpid).result() > 0  # force the fork
        assert pool.maybe_recycle() == "rss"
        assert pool.recycles == 1
    finally:
        pool.shutdown()


def test_note_tasks_charges_externally_submitted_work():
    # The daemon hands the raw executor to a WaveSupervisor, then
    # charges the budget itself — note_tasks must count like submit.
    pool = WorkerPool(1, max_requests_per_worker=3)
    try:
        executor = pool.executor()
        for _ in range(3):
            executor.submit(os.getpid).result()
            pool.note_tasks(1)
        assert pool.maybe_recycle() == "requests"
    finally:
        pool.shutdown()


def test_worker_rss_bytes_reads_proc():
    from repro.pipeline.pool import worker_rss_bytes

    mine = worker_rss_bytes(os.getpid())
    assert mine is not None and mine > 1024 * 1024
    assert worker_rss_bytes(2 ** 30) is None  # no such pid
