"""The ``mspec soak`` endurance harness: seeded schedules, differential
checking against a local oracle, error budgets, and the schema-valid
``repro.bench.soak/v1`` report.

The load-bearing properties: a healthy daemon soaks clean (zero
divergences, zero client errors, exit 0), a daemon serving *different
source* than the oracle's is caught as a divergence (exit 7 — the
harness really checks, it does not just count), and an unreachable
daemon is an error-budget breach rather than a vacuous pass.
"""

import json
import os

import pytest

from repro.check.report import EXIT_CHECK_FAILED
from repro.obs import Obs
from repro.obs.schema import BENCH_SOAK_SCHEMA, validate_bench_soak
from repro.serve import ServeConfig
from repro.soak import SoakConfig, load_request_mix, run_soak
from tests.test_serve import _run_daemon, _write_modules

POWER = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x

module Sum where
import Power

sumpow n x y = power n x + power n y
"""

# Same interface, different semantics: the soak oracle must catch a
# daemon serving this when it expected POWER.
POWER_WRONG = """\
module Power where

power n x = if n == 1 then x + 1 else x * power (n - 1) x

module Sum where
import Power

sumpow n x y = power n x + power n y
"""

MIX = [
    {"goal": "power", "static_args": {"n": 2}, "dyn_inputs": [[3], [7]]},
    {"goal": "power", "static_args": {"n": 3}, "dyn_inputs": [[2]]},
    {"goal": "sumpow", "static_args": {"n": 2}, "dyn_inputs": [[2, 3]]},
]


@pytest.fixture
def moddir(tmp_path):
    d = tmp_path / "modules"
    _write_modules(d, POWER)
    return str(d)


def test_clean_soak_holds_the_error_budget(moddir, tmp_path):
    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    report_path = str(tmp_path / "BENCH_soak.json")
    try:
        soak = SoakConfig(
            dir=moddir,
            requests=MIX,
            socket_path=config.socket_path,
            max_requests=30,
            clients=2,
            check_every=2,
            batch_every=7,
            batch_jobs=1,
            seed=1,
            request_timeout=30.0,
            report_path=report_path,
        )
        code, report = run_soak(soak, obs=Obs())
    finally:
        transport.initiate_shutdown()
        thread.join(60)

    assert code == 0
    assert report["ok"] and report["error_budget"]["ok"]
    assert report["schema"] == BENCH_SOAK_SCHEMA
    assert validate_bench_soak(report) == []
    requests = report["requests"]
    assert requests["sent"] + requests["batch"] == 30
    assert requests["ok"] == requests["sent"]
    assert requests["client_errors"] == 0
    assert requests["batch"] == 4  # every 7th of 30
    assert requests["batch_failures"] == 0
    assert report["checks"]["performed"] > 0
    assert report["checks"]["divergences"] == 0
    # The committed report is exactly what run_soak wrote.
    with open(report_path) as f:
        assert json.load(f) == report


def test_soak_catches_a_daemon_serving_different_source(moddir, tmp_path):
    wrong = tmp_path / "wrong"
    _write_modules(wrong, POWER_WRONG)
    config = ServeConfig(dir=str(wrong), jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    try:
        soak = SoakConfig(
            dir=moddir,  # the oracle's truth differs from what is served
            requests=MIX,
            socket_path=config.socket_path,
            max_requests=8,
            clients=1,
            check_every=1,
            seed=3,
        )
        code, report = run_soak(soak, obs=Obs())
    finally:
        transport.initiate_shutdown()
        thread.join(60)

    assert code == EXIT_CHECK_FAILED
    assert not report["ok"]
    assert report["checks"]["divergences"] > 0
    assert any(
        "differs" in d["what"] for d in report["details"]
    )
    assert validate_bench_soak(report) == []  # failing reports validate too


def test_unreachable_daemon_breaches_the_budget(moddir, tmp_path):
    soak = SoakConfig(
        dir=moddir,
        requests=MIX,
        socket_path=str(tmp_path / "nothing.sock"),
        max_requests=5,
        clients=1,
        connect_timeout=0.3,
        retry_attempts=2,
    )
    code, report = run_soak(soak, obs=Obs())
    assert code == EXIT_CHECK_FAILED
    assert report["requests"]["client_errors"] == 5
    assert not report["ok"]


def test_seeded_schedule_is_deterministic(moddir):
    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    try:
        reports = []
        for _ in range(2):
            soak = SoakConfig(
                dir=moddir,
                requests=MIX,
                socket_path=config.socket_path,
                max_requests=12,
                clients=1,
                check_every=3,
                seed=42,
            )
            code, report = run_soak(soak, obs=Obs())
            assert code == 0
            reports.append(report)
    finally:
        transport.initiate_shutdown()
        thread.join(60)
    # Same seed, same mix, same count: the same checks run both times.
    assert (
        reports[0]["checks"]["performed"]
        == reports[1]["checks"]["performed"]
    )
    assert reports[0]["workload"]["scheduled"] == 12


def test_soak_counters_land_in_obs(moddir):
    config = ServeConfig(dir=moddir, jobs=1, warm_pool=False)
    thread, server, transport = _run_daemon(config)
    obs = Obs()
    try:
        soak = SoakConfig(
            dir=moddir,
            requests=MIX,
            socket_path=config.socket_path,
            max_requests=10,
            clients=1,
            check_every=2,
            seed=0,
        )
        code, report = run_soak(soak, obs=obs)
        assert code == 0
    finally:
        transport.initiate_shutdown()
        thread.join(60)
    counters = obs.metrics.snapshot()["counters"]
    assert counters["soak.requests"] == report["requests"]["sent"]
    assert counters["soak.ok"] == report["requests"]["ok"]
    assert counters["soak.divergences"] == 0


# ---------------------------------------------------------------------------
# Config and mix-file validation.
# ---------------------------------------------------------------------------


def test_load_request_mix_validates(tmp_path):
    path = tmp_path / "mix.json"
    path.write_text(json.dumps(MIX))
    assert load_request_mix(str(path)) == MIX

    for bad, fragment in [
        ([], "non-empty"),
        ({"goal": "x"}, "non-empty JSON list"),
        ([{"static_args": {}}], "goal"),
        ([{"goal": "f", "static_args": [1]}], "static_args"),
        ([{"goal": "f", "dyn_inputs": [1]}], "dyn_inputs"),
    ]:
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match=fragment):
            load_request_mix(str(path))


def test_soak_config_validates(moddir):
    with pytest.raises(ValueError, match="exactly one"):
        SoakConfig(dir=moddir, requests=MIX)
    with pytest.raises(ValueError, match="exactly one"):
        SoakConfig(
            dir=moddir, requests=MIX, socket_path="/s", tcp=("h", 1)
        )
    with pytest.raises(ValueError, match="must not be empty"):
        SoakConfig(dir=moddir, requests=[], socket_path="/s")
    with pytest.raises(ValueError, match="max_requests"):
        SoakConfig(
            dir=moddir, requests=MIX, socket_path="/s", max_requests=0
        )
    with pytest.raises(ValueError, match="check_every"):
        SoakConfig(
            dir=moddir, requests=MIX, socket_path="/s", check_every=0
        )


# ---------------------------------------------------------------------------
# The CLI: mspec soak --spawn runs a supervised daemon for the duration.
# ---------------------------------------------------------------------------


def test_cli_soak_spawn_end_to_end(moddir, tmp_path, capsys):
    from repro.cli import main

    mix_path = tmp_path / "mix.json"
    mix_path.write_text(json.dumps(MIX))
    report_path = tmp_path / "BENCH_soak.json"
    code = main(
        [
            "soak",
            moddir,
            "--requests", str(mix_path),
            "--spawn",
            "--jobs", "1",
            "--count", "12",
            "--clients", "2",
            "--check-every", "3",
            "--seed", "7",
            "--report", str(report_path),
            "--json",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(out)
    assert report["ok"]
    assert report["schema"] == BENCH_SOAK_SCHEMA
    assert os.path.exists(str(report_path))
    # The spawned daemon was torn down with its socket.
    assert not os.path.exists(
        os.path.join(moddir, ".mspec-serve.sock")
    )
