"""E3: the cogen output for ``power`` has the structure of Fig. 3.

Fig. 3 shows ``mk-power`` (deciding unfold/residualise via ``mk-resid``
with the identification triple, the unfold thunk, and the body builder)
and ``mk-power-body`` (one ``mk-op`` per operation with a binding-time
parameter, coercions included).
"""

import pytest

from repro.bt.analysis import analyse_program
from repro.bench.generators import power_source
from repro.genext.cogen import cogen_module, cogen_program, mangle, mk_name
from repro.modsys.program import load_program


@pytest.fixture(scope="module")
def power_genext():
    analysis = analyse_program(load_program(power_source()))
    return cogen_module(analysis.modules[0])


def test_module_identity(power_genext):
    assert power_genext.name == "Power"
    assert power_genext.imports == ()


def test_mk_power_pair_exists(power_genext):
    src = power_genext.source
    assert "def mk_power(st, t, u, n, x):" in src
    assert "def mk_power_body(st, t, u, n, x):" in src


def test_mk_power_calls_mk_resid_with_triple(power_genext):
    src = power_genext.source
    # unfold binding time t, name, binding times, arguments.
    assert "rt.mk_resid(st, t, _QUAL + 'power', (t, u), (n, x)," in src


def test_unfold_thunk_and_body_builder(power_genext):
    src = power_genext.source
    assert "lambda: mk_power_body(st, t, u, n, x)" in src
    assert "lambda _a: mk_power_body(st, t, u, _a[0], _a[1])" in src


def test_operations_carry_binding_times(power_genext):
    src = power_genext.source
    assert "rt.mk_if(st, t," in src
    assert "rt.mk_prim(st, '==', t," in src
    assert "rt.mk_prim(st, '*', rt.lub(t, u)," in src
    assert "rt.mk_prim(st, '-', t," in src


def test_coercions_present(power_genext):
    src = power_genext.source
    assert "rt.coerce(st, rt.lit(1), rt.TBase('Nat', t))" in src
    assert "rt.coerce(st, x, rt.TBase('Nat', rt.lub(t, u)))" in src


def test_recursive_call_is_direct(power_genext):
    assert "mk_power(st, t, u, rt.mk_prim(st, '-', t," in power_genext.source


def test_metadata_tables(power_genext):
    src = power_genext.source
    assert "_SIGNATURES[_QUAL + 'power'] = rt.Signature(bt_params=('t', 'u')" in src
    assert ("_FN_INFO[_QUAL + 'power'] = rt.FnInfo(_QUAL + 'power', _MODULE, "
        "('n', 'x'), (_QUAL + 'power',))") in src
    assert "_EXPORTS = {(_QUAL + 'power'): mk_power}" in src


def test_generated_source_compiles():
    analysis = analyse_program(load_program(power_source()))
    module = cogen_module(analysis.modules[0])
    compile(module.source, "<power genext>", "exec")


def test_cogen_is_deterministic():
    a1 = analyse_program(load_program(power_source()))
    a2 = analyse_program(load_program(power_source()))
    assert cogen_module(a1.modules[0]).source == cogen_module(a2.modules[0]).source


def test_cogen_per_module_independence():
    # The genext of a module is identical whether the module is compiled
    # alone or as part of a larger program — the paper's black-box
    # modularity property.
    alone = analyse_program(load_program(power_source()))
    together = analyse_program(
        load_program(
            power_source()
            + "\nmodule Use where\nimport Power\n\ncube y = power 3 y\n"
        )
    )
    assert (
        cogen_module(alone.modules[0]).source
        == cogen_module(together.modules[0]).source
    )


def test_imported_functions_are_linked_not_inlined():
    analysis = analyse_program(
        load_program(
            power_source()
            + "\nmodule Use where\nimport Power\n\ncube y = power 3 y\n"
        )
    )
    use = cogen_program(analysis)[1]
    assert use.name == "Use"
    assert "'power': 'mk_power'" in use.source
    assert "def mk_power(" not in use.source  # not copied in


def test_mangle():
    assert mangle("foo") == "foo"
    assert mangle("x'") == "x_q"
    assert mangle("lambda") == "lambda_v"
    assert mangle("st") == "st_v"
    assert mk_name("f'") == "mk_f_q"


def test_lambda_helpers_are_hoisted():
    analysis = analyse_program(
        load_program(
            "module M where\n\n"
            "apply f x = f @ x\n"
            "go k x = apply (\\y -> y + k) x\n"
        )
    )
    src = cogen_module(analysis.modules[0]).source
    assert "def _go_lam1(" in src
    assert "rt.mk_lam(st, 'y', _go_lam1," in src
    assert "'go.lam1'" in src
