"""E12: the fundamental correctness property of specialisation.

For every corpus program: running the residual program on the dynamic
inputs equals running the source program on all inputs — and the
interpretive baseline ``mix`` produces the *identical* residual program.
Also checks structural health of every residual program: it links, type
checks, has no empty modules, and has an acyclic import graph.
"""

import pytest

import repro
from repro.interp import run_program
from repro.specialiser import mix_specialise
from repro.types import infer_program
from repro.api import SpecOptions


def _static_values(case):
    return {k: _to_value(v) for k, v in case["static"].items()}


def _to_value(v):
    # Corpus literals use ("pair", a, b) for pairs and tuples for lists.
    return v


def _specialise(gp, case, options=None):
    return repro.specialise(gp, case["goal"], _static_values(case), options)


def test_residual_equals_source(corpus_case, corpus_genexts):
    case = corpus_case
    gp = corpus_genexts[case["name"]]
    result = _specialise(gp, case)
    linked = repro.load_program(case["source"])
    sig = gp.signature(case["goal"])
    for dyn in case["dyn_inputs"]:
        full_args = []
        dyn_iter = iter(dyn)
        for p in sig.params:
            if p in case["static"]:
                full_args.append(case["static"][p])
            else:
                full_args.append(next(dyn_iter))
        expected = run_program(linked, case["goal"], full_args)
        assert result.run(*dyn) == expected


def test_mix_produces_identical_residual(corpus_case, corpus_genexts):
    case = corpus_case
    gp = corpus_genexts[case["name"]]
    genext_result = _specialise(gp, case)
    mix_result = mix_specialise(case["source"],
        case["goal"],
        _static_values(case), SpecOptions(force_residual=frozenset(case.get("force_residual", ()))))
    assert mix_result.program == genext_result.program
    assert mix_result.entry == genext_result.entry


def test_residual_program_is_well_formed(corpus_case, corpus_genexts):
    case = corpus_case
    gp = corpus_genexts[case["name"]]
    result = _specialise(gp, case)
    # Linking already checked imports/acyclicity/scoping; re-check the
    # key properties explicitly.
    program = result.program
    for m in program.modules:
        assert m.defs, "empty residual module %s was emitted" % m.name
    result.linked.graph.check_acyclic()
    # Residual programs must type check (the modular "compile" step).
    infer_program(result.linked)


def test_dfs_equivalent_to_bfs(corpus_case, corpus_genexts):
    from repro.residual.normalise import normalise_program

    case = corpus_case
    gp = corpus_genexts[case["name"]]
    bfs = _specialise(gp, case, SpecOptions(strategy="bfs"))
    dfs = _specialise(gp, case, SpecOptions(strategy="dfs"))
    assert normalise_program(bfs.program, bfs.entry) == normalise_program(
        dfs.program, dfs.entry
    )
    for dyn in case["dyn_inputs"]:
        assert bfs.run(*dyn) == dfs.run(*dyn)


def test_monolithic_emission_equivalent(corpus_case, corpus_genexts):
    case = corpus_case
    gp = corpus_genexts[case["name"]]
    modular = _specialise(gp, case)
    mono = _specialise(gp, case, SpecOptions(monolithic=True))
    assert len(mono.program.modules) == 1
    for dyn in case["dyn_inputs"]:
        assert mono.run(*dyn) == modular.run(*dyn)


def test_annotations_check(corpus_case):
    from repro.anno import check_program
    from repro.bt.analysis import analyse_program

    case = corpus_case
    linked = repro.load_program(case["source"])
    analysis = analyse_program(
        linked, force_residual=frozenset(case.get("force_residual", ()))
    )
    check_program(analysis.annotated)


def test_annotations_strip_to_source(corpus_case):
    from repro.anno.ast import strip
    from repro.bt.analysis import analyse_program

    case = corpus_case
    linked = repro.load_program(case["source"])
    analysis = analyse_program(
        linked, force_residual=frozenset(case.get("force_residual", ()))
    )
    for amodule in analysis.annotated.modules:
        module = linked.module(amodule.name)
        for adef in amodule.defs:
            d = module.find(adef.name)
            assert strip(adef.body) == d.body
            assert adef.params == d.params
