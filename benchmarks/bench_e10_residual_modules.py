"""E10 (Secs. 1 and 5): modular residual programs compile faster.

"The generated programs may be unreasonably large: too large, in fact,
to be analysed and compiled by the available program analysers and
compilers [...] we break the residual program up into modules also, each
of which can hopefully be compiled reasonably fast."

The "compiler front end" here is parse + name resolution + Hindley–Milner
type checking of a module (exactly what our residual programs go through
before being run).  We specialise a program whose residual code spreads
over several modules and compare the *largest single compilation unit*
under modular vs monolithic emission; with quadratic-ish analyser costs,
many small units beat one big one."""

import time

import pytest

import repro
from repro.bench.metrics import module_ast_size
from repro.lang.pretty import pretty_module
from repro.modsys.program import load_program
from repro.types import infer_program
from repro.api import SpecOptions

SOURCE = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x

module Fib where

fibaux n a b = if n == 0 then a else fibaux (n - 1) b (a + b)

module Sum where

sumto n acc = if n == 0 then acc else sumto (n - 1) (acc + n)

module Main where
import Power
import Fib
import Sum

main n = power (fibaux 6 0 1) n + sumto 9 0 + power 3 (n + 1)
"""


def _compile_module(module_source):
    linked = load_program(module_source)
    infer_program(linked)


def _residuals():
    gp = repro.compile_genexts(SOURCE, SpecOptions(force_residual={"power", "fibaux", "sumto", "main"}))
    modular = repro.specialise(gp, "main", {})
    mono = repro.specialise(gp, "main", {}, SpecOptions(monolithic=True))
    return modular, mono


def _standalone_source(m):
    """A module's code as its own compilation unit (imports stripped —
    the front-end cost model charges per-unit work)."""
    text = pretty_module(m)
    lines = [l for l in text.splitlines() if not l.startswith("import ")]
    header, rest = lines[0], lines[1:]
    body = "\n".join(rest)
    # Re-declare referenced-but-external functions is unnecessary for a
    # size/compile-cost comparison: measure parse+typecheck on the whole
    # program but report per-module sizes.
    return header + "\n" + body + "\n"


def test_modular_vs_monolithic(benchmark, table):
    modular, mono = benchmark.pedantic(_residuals, rounds=1, iterations=1)
    mod_sizes = sorted(
        (module_ast_size(m), m.name) for m in modular.program.modules
    )
    mono_size = module_ast_size(mono.program.modules[0])
    rows = [[name, size] for size, name in mod_sizes]
    rows.append(["(monolithic)", mono_size])
    table(
        "E10 — residual compilation units (AST nodes)",
        ["module", "size"],
        rows,
    )
    largest_modular = mod_sizes[-1][0]
    assert largest_modular < mono_size, (
        "modular emission must shrink the largest compilation unit"
    )
    assert len(modular.program.modules) >= 3


def test_compile_modular_residual(benchmark):
    modular, _ = _residuals()

    def compile_all():
        infer_program(modular.linked)

    benchmark(compile_all)


def test_compile_monolithic_residual(benchmark):
    _, mono = _residuals()

    def compile_all():
        infer_program(mono.linked)

    benchmark(compile_all)
