"""E5 (Sec. 4): "Running a generating extension is always faster than
running the corresponding specialiser, because there is no need to
inspect and interpret the source code of the program to be specialised."

We compare, per workload:

* **genext** — time to run the linked generating extensions (the per-run
  cost after the once-and-for-all preparation);
* **mix (spec only)** — the interpretive specialiser's specialisation
  phase on the pre-analysed program;
* **mix (full)** — parse + analyse + specialise, the cost an ordinary
  specialiser pays on every run.

The shape to reproduce: genext < mix(spec) < mix(full) on every row.
"""

import time

import pytest

import repro
from repro.bench.generators import (
    chain_program,
    machine_interpreter_source,
    power_source,
    random_machine_program,
    synthetic_module_source,
)
from repro.genext.engine import specialise as engine_specialise
from repro.specialiser import MixProgram

# Workloads sized so the genext-vs-interpretation gap dominates noise
# (sub-100-microsecond specialisations flip on scheduler jitter).
WORKLOADS = [
    ("residual chain (60 fns)", chain_program(60), "c0", {}),
    (
        "machine prog (20 instrs)",
        machine_interpreter_source(),
        "run",
        {"prog": random_machine_program(20, seed=3)},
    ),
    (
        "synthetic module (30 defs)",
        synthetic_module_source("M", 30, seed=5),
        "f0",
        {"n": 6},
    ),
]


def _best_of(fn, repeat=9):
    best = float("inf")
    out = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _spec_phase_only(provider, goal, static):
    """Run exactly the specialisation phase — goal setup, the generating
    run, the pending list — without residual-module assembly (which is
    identical for both contenders and would dilute the comparison the
    paper makes)."""
    from repro.genext.engine import goal_binding_times
    from repro.genext.runtime import DCode, coerce, deep_recursion, dynamize, from_python
    from repro.lang.ast import Var

    signature = provider.signature(goal)
    env = goal_binding_times(signature, set(static))
    types = signature.param_types(env)
    st = provider.new_state()
    args = []
    for param, t in zip(signature.params, types):
        if param in static:
            args.append(coerce(st, from_python(static[param]), t))
        else:
            args.append(DCode(Var(param)))
    bts = [env[b] for b in signature.bt_params]
    with deep_recursion():
        result = provider.mk(goal)(st, *bts, *args)
        st.run_pending()
        dynamize(st, result)
        st.run_pending()
    return st


def _rows():
    rows = []
    for name, source, goal, static in WORKLOADS:
        gp = repro.compile_genexts(source)
        mp = MixProgram.from_source(source)
        t_genext, st1 = _best_of(lambda: _spec_phase_only(gp, goal, static))
        t_mix_spec, st2 = _best_of(lambda: _spec_phase_only(mp, goal, static))
        t_mix_full, _ = _best_of(
            lambda: engine_specialise(
                MixProgram.from_source(source), goal, static
            ),
            repeat=3,
        )
        r1 = engine_specialise(gp, goal, static)
        r2 = engine_specialise(mp, goal, static)
        assert r1.program == r2.program
        assert st1.stats.specialisations == st2.stats.specialisations
        rows.append(
            [
                name,
                "%.3f ms" % (t_genext * 1e3),
                "%.3f ms" % (t_mix_spec * 1e3),
                "%.3f ms" % (t_mix_full * 1e3),
                "%.1fx" % (t_mix_spec / t_genext),
                "%.1fx" % (t_mix_full / t_genext),
            ]
        )
        assert t_genext < t_mix_spec, "genext must beat interpretive mix"
        assert t_mix_spec < t_mix_full, "front end must cost something"
    return rows


def test_genext_vs_mix(benchmark, table):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table(
        "E5 — specialisation time: generating extensions vs mix",
        ["workload", "genext", "mix (spec only)", "mix (full)", "spec speedup", "full speedup"],
        rows,
    )


def test_genext_specialisation_speed(benchmark):
    gp = repro.compile_genexts(power_source())
    benchmark(engine_specialise, gp, "power", {"x": 2})


def test_mix_specialisation_speed(benchmark):
    mp = MixProgram.from_source(power_source())
    benchmark(engine_specialise, mp, "power", {"x": 2})


def test_mix_full_pipeline_speed(benchmark):
    def full():
        return engine_specialise(
            MixProgram.from_source(power_source()), "power", {"x": 2}
        )

    benchmark(full)
