"""Scale check: the paper's motivation is *large* programs.

"The input to the specialiser, consisting of the source code of the
program plus all libraries it uses, may be unreasonably large" (Sec. 1).
We synthesise a 30-module / ~600-definition program, prepare it the
module-sensitive way (per-module analysis + cogen), and specialise one
goal.  The point being measured:

* preparation cost is per-module and parallelisable-by-structure (each
  module needs only its imports' interfaces);
* a single specialisation touches a tiny fraction of the program and
  its cost tracks the *used* definitions, not the program size.
"""

import time

import pytest

import repro
from repro.bench.generators import layered_program
from repro.bt.analysis import analyse_program
from repro.genext.cogen import cogen_program
from repro.genext.link import link_genexts
from repro.lang.ast import program_size
from repro.modsys.program import link_program
from repro.lang.parser import parse_program

N_MODULES = 30
DEFS = 20


@pytest.fixture(scope="module")
def big_program():
    sources = layered_program(N_MODULES, DEFS, seed=9)
    return link_program(parse_program("\n".join(sources.values())))


def test_prepare_and_specialise_at_scale(benchmark, table, big_program):
    def scenario():
        t0 = time.perf_counter()
        analysis = analyse_program(big_program)
        t_analyse = time.perf_counter() - t0

        t0 = time.perf_counter()
        modules = cogen_program(analysis)
        t_cogen = time.perf_counter() - t0

        t0 = time.perf_counter()
        gp = link_genexts(modules)
        t_link = time.perf_counter() - t0

        goal = "m%d_f0" % (N_MODULES - 1)
        t0 = time.perf_counter()
        result = repro.specialise(gp, goal, {"n": 3})
        t_spec = time.perf_counter() - t0
        return analysis, t_analyse, t_cogen, t_link, t_spec, result

    analysis, t_analyse, t_cogen, t_link, t_spec, result = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    n_defs = len(analysis.schemes)
    table(
        "Scale — %d modules, %d definitions, %d AST nodes"
        % (N_MODULES, n_defs, program_size(big_program.program)),
        ["stage", "time", "note"],
        [
            ["binding-time analysis", "%.1f ms" % (t_analyse * 1e3),
             "%.2f ms/def" % (t_analyse * 1e3 / n_defs)],
            ["cogen", "%.1f ms" % (t_cogen * 1e3),
             "%.2f ms/def" % (t_cogen * 1e3 / n_defs)],
            ["compile+link genexts", "%.1f ms" % (t_link * 1e3), ""],
            ["one specialisation", "%.2f ms" % (t_spec * 1e3),
             "%d residual defs" % result.stats["specialisations"]],
        ],
    )
    # A single specialisation must be orders cheaper than preparation.
    assert t_spec < t_analyse
    assert result.stats["specialisations"] <= N_MODULES + 2


def test_specialisation_speed_at_scale(benchmark, big_program):
    gp = link_genexts(cogen_program(analyse_program(big_program)))
    goal = "m%d_f0" % (N_MODULES - 1)
    benchmark(repro.specialise, gp, goal, {"n": 3})
