"""E2 (paper Fig. 2): the polymorphic binding-time analysis of ``power``.

Regenerates the paper's annotated ``power`` and principal binding-time
type, and benchmarks the per-module analysis — the "once and for all"
cost a library module pays.
"""

from repro.anno.pretty import pretty_adef
from repro.bench.generators import power_source, power_twice_main_source
from repro.bt.analysis import analyse_program
from repro.modsys.program import load_program


def test_power_annotation_matches_paper(benchmark, table):
    linked = load_program(power_source())
    analysis = benchmark(analyse_program, linked)
    scheme = analysis.schemes["power"]
    sol = scheme.solve_symbolic()
    assert str(sol[scheme.res.bt]) == "t|u"
    assert str(sol[scheme.unfold]) == "t"
    table(
        "Fig. 2 — binding-time analysis of power",
        ["item", "value"],
        [
            ["principal type", str(scheme)],
            ["unfold annotation", str(sol[scheme.unfold])],
            ["annotated definition", pretty_adef(
                analysis.annotated.module("Power").find("power")
            )],
        ],
    )


def test_per_module_analysis_scales(benchmark, table):
    """Analysis of the three-module program, module by module."""
    linked = load_program(power_twice_main_source())
    analysis = benchmark(analyse_program, linked)
    rows = [
        [m.name, len(m.schemes), "; ".join(
            "%s : %s" % (k, v) for k, v in sorted(m.schemes.items())
        )]
        for m in analysis.modules
    ]
    table(
        "Per-module binding-time interfaces",
        ["module", "#defs", "schemes"],
        rows,
    )
