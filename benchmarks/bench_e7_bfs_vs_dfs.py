"""E7 (Sec. 5): breadth-first vs depth-first specialisation space.

"Assigning functions to modules is an intrinsically depth-first problem
[...] which unfortunately may lead to very many specialisations being
active simultaneously, and may in turn require a great deal of space
[...] we instead use a breadth-first strategy [...] Our experiments show
that this strategy is considerably more space efficient."

We measure, on residualised call chains and call trees:

* peak simultaneously active specialisations (the structural counter);
* peak Python heap during the run (tracemalloc), with residual
  definitions streamed to a null sink so finished specialisations are
  not retained (the paper's writes-to-file-immediately discipline).
"""

import sys
import tracemalloc

import pytest

import repro
from repro.bench.generators import chain_program, fanout_program
from repro.genext.engine import specialise
from repro.api import SpecOptions


def _peak_memory(gp, goal, strategy):
    sink = lambda placement, d: None
    tracemalloc.start()
    tracemalloc.reset_peak()
    specialise(gp, goal, {}, SpecOptions(strategy=strategy, sink=sink))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _sweep():
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(100_000)
    rows = []
    try:
        for label, source, goal in [
            ("chain depth 100", chain_program(100), "c0"),
            ("chain depth 400", chain_program(400), "c0"),
            ("tree depth 6 width 2", *_fan(6, 2)),
            ("tree depth 4 width 4", *_fan(4, 4)),
        ]:
            gp = repro.compile_genexts(source)
            bfs = specialise(gp, goal, {}, SpecOptions(strategy="bfs"))
            dfs = specialise(gp, goal, {}, SpecOptions(strategy="dfs"))
            mem_bfs = _peak_memory(gp, goal, "bfs")
            mem_dfs = _peak_memory(gp, goal, "dfs")
            rows.append(
                [
                    label,
                    bfs.stats["specialisations"],
                    bfs.stats["active_peak"],
                    dfs.stats["active_peak"],
                    bfs.stats["pending_peak"],
                    "%.0f KiB" % (mem_bfs / 1024),
                    "%.0f KiB" % (mem_dfs / 1024),
                ]
            )
            assert bfs.stats["active_peak"] <= 1
            assert dfs.stats["active_peak"] >= 4
    finally:
        sys.setrecursionlimit(old_limit)
    return rows


def _fan(depth, width):
    source, root = fanout_program(depth, width)
    return source, root


def test_bfs_vs_dfs_space(benchmark, table):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table(
        "E7 — breadth-first vs depth-first specialisation",
        [
            "workload",
            "specialisations",
            "BFS active peak",
            "DFS active peak",
            "BFS pending peak",
            "BFS heap peak",
            "DFS heap peak",
        ],
        rows,
    )


def test_bfs_speed_on_chain(benchmark):
    gp = repro.compile_genexts(chain_program(200))
    benchmark(specialise, gp, "c0", {}, strategy="bfs")


def test_dfs_speed_on_chain(benchmark):
    gp = repro.compile_genexts(chain_program(200))
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(100_000)
    try:
        benchmark(specialise, gp, "c0", {}, strategy="dfs")
    finally:
        sys.setrecursionlimit(old)
