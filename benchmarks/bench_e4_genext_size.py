"""E4 (Sec. 6): generating-extension size.

The paper reports "the compiled code of the generating extension of a
module is four to five times larger than the code of the original
module" and that "the size of the generating extension is linear in the
size of the source program".

We sweep synthetic modules of growing size and report the expansion
factor in source lines, in AST-node counts, and in CPython bytecode, plus
a least-squares linear fit of genext size against source size (the
linearity claim — R² should be ~1)."""

import pytest

from repro.bench.generators import synthetic_module_source
from repro.bench.metrics import code_lines, linear_fit, module_ast_size
from repro.bt.analysis import analyse_program
from repro.genext.cogen import cogen_program
from repro.modsys.program import load_program

SIZES = [2, 5, 10, 20, 40, 80]


def _genext_of(n):
    src = synthetic_module_source("M", n, seed=n)
    linked = load_program(src)
    analysis = analyse_program(linked)
    (module,) = cogen_program(analysis)
    return src, linked, module


def _bytecode_size(python_source, name):
    code = compile(python_source, name, "exec")
    total = 0
    stack = [code]
    while stack:
        c = stack.pop()
        total += len(c.co_code)
        stack.extend(k for k in c.co_consts if hasattr(k, "co_code"))
    return total


def _sweep():
    rows = []
    src_sizes = []
    gen_sizes = []
    for n in SIZES:
        src, linked, module = _genext_of(n)
        src_lines = code_lines(src)
        gen_lines = code_lines(module.source)
        src_nodes = module_ast_size(linked.module("M"))
        gen_bytes = _bytecode_size(module.source, "M.genext.py")
        rows.append(
            [
                n,
                src_lines,
                gen_lines,
                "%.1fx" % (gen_lines / src_lines),
                src_nodes,
                gen_bytes,
                "%.1f" % (gen_bytes / src_nodes),
            ]
        )
        src_sizes.append(src_nodes)
        gen_sizes.append(gen_lines)
    return rows, src_sizes, gen_sizes


def test_genext_size_sweep(benchmark, table):
    rows, src_sizes, gen_sizes = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    slope, intercept, r2 = linear_fit(src_sizes, gen_sizes)
    rows.append(["fit", "", "", "", "", "slope %.3f" % slope, "R2 %.4f" % r2])
    table(
        "E4 — generating-extension size vs source size",
        ["defs", "src LoC", "genext LoC", "LoC factor", "src AST", "genext bytecode", "bytes/node"],
        rows,
    )
    # The linearity claim.
    assert r2 > 0.98
    # The expansion factor is a modest constant (the paper's compiled
    # Haskell measured 4-5x; generated Python source carries per-module
    # metadata, so small modules sit higher and the asymptote is what
    # matters).
    big_factor = gen_sizes[-1] / code_lines(
        synthetic_module_source("M", SIZES[-1], seed=SIZES[-1])
    )
    assert 2.0 < big_factor < 12.0


def test_cogen_speed_scales_linearly(benchmark):
    src = synthetic_module_source("M", 40, seed=40)
    linked = load_program(src)
    analysis = analyse_program(linked)
    benchmark(cogen_program, analysis)
