"""E9b (Sec. 5): combination modules are exponentially many in theory,
almost all empty in practice.

"In theory we might need to generate exponentially more residual modules
than there are modules in the source.  In practice we expect the vast
majority to be empty.  This is the strongest reason why we must avoid
generating empty modules, and why we detect emptiness dynamically."

We count, per workload: source modules, the number of *possible*
combinations (antichains aside, bounded by 2^n − 1), and the residual
modules actually materialised.
"""

import pytest

import repro
from repro.bench.generators import power_twice_main_source
from repro.api import SpecOptions

AC_SHARING = """
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)

module C where

g x = x + 1
gclo = \\x -> g x

module B where
import A
import C

hb zs = map gclo zs

module Dm where
import A
import C

hd zs = map gclo (tail zs)

module Main where
import B
import Dm

append xs ys = if null xs then ys else head xs : append (tail xs) ys
main zs = append (hb zs) (hd zs)
"""


def _run(source, goal, force):
    gp = repro.compile_genexts(source, SpecOptions(force_residual=force))
    result = repro.specialise(gp, goal, {})
    n_source = len(repro.load_program(source).program.modules)
    return n_source, len(result.program.modules)


def test_combinations_mostly_empty(benchmark, table):
    def measure():
        rows = []
        for label, source, goal, force in [
            (
                "Power/Twice/Main",
                power_twice_main_source(),
                "main",
                {"power", "twice", "main"},
            ),
            (
                "A/C/B/Dm/Main sharing",
                AC_SHARING,
                "main",
                {"g", "hb", "hd", "main", "append"},
            ),
        ]:
            n_source, n_residual = _run(source, goal, frozenset(force))
            rows.append(
                [label, n_source, 2 ** n_source - 1, n_residual]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table(
        "E9b — possible vs materialised residual modules",
        ["workload", "source modules", "possible combinations", "materialised"],
        rows,
    )
    for row in rows:
        assert row[3] <= row[1] + 1  # far below the exponential bound
