"""E3 (paper Fig. 3): the generating extension of ``power``.

Regenerates the cogen output and benchmarks running the generating
extension in both directions of the paper's example:

* ``power {S D} 3 x``  — unfolds to ``x * (x * x)``;
* ``power {D S} n 2``  — produces the polyvariant residual loop.
"""

import repro
from repro.bench.generators import power_source
from repro.bench.metrics import code_lines
from repro.bt.analysis import analyse_program
from repro.genext.cogen import cogen_program
from repro.modsys.program import load_program


def _gp():
    return repro.compile_genexts(power_source())


def test_cogen_of_power(benchmark, table):
    linked = load_program(power_source())
    analysis = analyse_program(linked)
    modules = benchmark(cogen_program, analysis)
    src = modules[0].source
    assert "def mk_power(st, t, u, n, x):" in src
    assert "rt.mk_resid(st, t, _QUAL + 'power', (t, u), (n, x)," in src
    table(
        "Fig. 3 — cogen output for power",
        ["metric", "value"],
        [
            ["source lines", code_lines(power_source())],
            ["genext lines", code_lines(src)],
            ["has mk_power / mk_power_body", True],
        ],
    )


def test_specialise_static_exponent(benchmark):
    gp = _gp()
    result = benchmark(repro.specialise, gp, "power", {"n": 8})
    assert result.run(2) == 256
    assert result.stats["unfolds"] == 8


def test_specialise_static_base(benchmark):
    gp = _gp()
    result = benchmark(repro.specialise, gp, "power", {"x": 2})
    assert result.run(10) == 1024
    assert result.stats["specialisations"] == 1


def test_fig3_outputs(benchmark, table):
    gp = _gp()

    def both():
        return (
            repro.specialise(gp, "power", {"n": 3}),
            repro.specialise(gp, "power", {"x": 2}),
        )

    unfolded, residual = benchmark.pedantic(both, rounds=1, iterations=1)
    table(
        "Fig. 3 — specialisations of power",
        ["direction", "residual program"],
        [
            ["power {S D} 3 x", repro.pretty_program(unfolded.program).strip()],
            ["power {D S} n 2", repro.pretty_program(residual.program).strip().replace("\n", " ; ")],
        ],
    )
