"""The paper's opening motivation: residual programs beat general ones.

"Given a suitable specialiser, the programmer can write one general
program solving a class of problems, and automatically generate from it
an efficient special purpose program for each particular problem."

We measure the general machine interpreter against its specialised
(compiled) residual on the same inputs — both executed by the same
object-language interpreter, so the difference is exactly the removed
interpretive overhead."""

import pytest

import repro
from repro.bench.generators import machine_interpreter_source, random_machine_program
from repro.interp import Interpreter
from repro.modsys.program import load_program


@pytest.fixture(scope="module")
def setup():
    source = machine_interpreter_source()
    gp = repro.compile_genexts(source)
    linked = load_program(source)
    prog = random_machine_program(30, seed=11)
    result = repro.specialise(gp, "run", {"prog": prog})
    return linked, prog, result


def test_interpreted_machine_program(benchmark, setup):
    linked, prog, _ = setup
    benchmark(lambda: Interpreter(linked, fuel=10_000_000).call("run", [prog, 5]))


def test_compiled_machine_program(benchmark, setup):
    _, _, result = setup
    benchmark(lambda: Interpreter(result.linked).call(result.entry, [5]))


def test_speedup_table(benchmark, setup, table):
    linked, prog, result = setup

    def measure():
        i1 = Interpreter(linked, fuel=10_000_000)
        i1.call("run", [prog, 5])
        i2 = Interpreter(result.linked)
        i2.call(result.entry, [5])
        return i1.steps, i2.steps

    general_steps, special_steps = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table(
        "Intro — general vs specialised program (evaluation steps)",
        ["program", "steps"],
        [
            ["general interpreter on program", general_steps],
            ["specialised (compiled) program", special_steps],
            ["speedup", "%.1fx" % (general_steps / special_steps)],
        ],
    )
    assert special_steps * 3 < general_steps
