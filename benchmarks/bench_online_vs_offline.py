"""Sec. 2 contrast: offline (binding-time-directed) vs online
(value-inspecting) specialisation.

The paper chooses the offline/cogen route because binding-time
annotations let generating extensions be compact and decisions be taken
once.  A termination-safe online strategy must be conservative about
unfolding (here: unfold only fully static calls), so it leaves residual
functions where the offline specialiser, licensed by the analysis,
unfolds completely.  This bench quantifies that on the paper's own
example and on the RPN compiler.
"""

import pytest

import repro
from repro.bench.generators import power_source
from repro.lang.ast import program_size
from repro.specialiser.online import OnlineSpecialiser
from repro.modsys.program import load_program

RPN = """\
module Lists where

nth xs n = if n == 0 then head xs else nth (tail xs) (n - 1)

module Rpn where
import Lists

exec prog env stack =
  if null prog then head stack
  else if fst (head prog) == 0 then exec (tail prog) env (snd (head prog) : stack)
  else if fst (head prog) == 1 then exec (tail prog) env (nth env (snd (head prog)) : stack)
  else if fst (head prog) == 2 then exec (tail prog) env ((head (tail stack) + head stack) : tail (tail stack))
  else exec (tail prog) env ((head (tail stack) * head stack) : tail (tail stack))

run prog env = exec prog env nil
"""

RPN_PROG = (
    ("pair", 1, 0),
    ("pair", 0, 1),
    ("pair", 2, 0),
    ("pair", 1, 1),
    ("pair", 3, 0),
)


def _compare(source, goal, static):
    linked = load_program(source)
    offline = repro.specialise(repro.compile_genexts(linked), goal, static)
    online = OnlineSpecialiser(linked).specialise(goal, static)
    return offline, online


def test_online_vs_offline(benchmark, table):
    def measure():
        rows = []
        for label, source, goal, static, dyn in [
            ("power n=3", power_source(), "power", {"n": 3}, (2,)),
            ("power x=2", power_source(), "power", {"x": 2}, (10,)),
            ("RPN compile", RPN, "run", {"prog": RPN_PROG}, ((3, 4),)),
        ]:
            offline, online = _compare(source, goal, static)
            assert offline.run(*dyn) == online.run(*dyn)
            rows.append(
                [
                    label,
                    offline.stats["specialisations"],
                    online.stats["specialisations"],
                    program_size(offline.program),
                    program_size(online.program),
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table(
        "Online vs offline specialisation (same answers, different residuals)",
        [
            "goal",
            "offline residual fns",
            "online residual fns",
            "offline size",
            "online size",
        ],
        rows,
    )
    # The offline pipeline unfolds strictly more on the static-exponent
    # and RPN goals.
    assert rows[0][1] < rows[0][2]
    assert rows[2][1] < rows[2][2]


def test_offline_speed(benchmark):
    gp = repro.compile_genexts(power_source())
    benchmark(repro.specialise, gp, "power", {"n": 6})


def test_online_speed(benchmark):
    spec = OnlineSpecialiser(load_program(power_source()))
    benchmark(spec.specialise, "power", {"n": 6})
