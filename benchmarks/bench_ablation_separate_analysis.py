"""Ablation (Sec. 4.1 / Sec. 9): separate analysis with interface files.

"Once a module is added to a software system, it can be analysed and
tailored for specialisation once and for all.  For the analysis we only
require that all imported modules have been analysed."

We build an import chain of 24 modules and compare the cost of
refreshing the analysis after various events, under the
content-digest invalidation scheme:

* **whole-program** — re-analyse everything (a specialiser without
  interface files);
* **touch all** — ``touch`` every source; digests are unchanged, so
  nothing is re-analysed (a timestamp scheme would redo the world);
* **leaf edit** — change the last module; exactly one re-analysis;
* **root edit, comment** — change the first module without changing its
  interface; early cutoff stops the cone at the root itself;
* **root edit, new export** — change the first module's *interface*;
  the direct importer is re-analysed, but its own interface comes out
  byte-identical, so the remaining 22 modules are cut off.
"""

import os
import time

import pytest

from repro.bench.generators import layered_program
from repro.bt.analysis import analyse_program
from repro.bt.interface import InterfaceManager
from repro.modsys.program import load_program_dir

N_MODULES = 24
DEFS = 4


def _setup(tmp):
    sources = layered_program(N_MODULES, DEFS, seed=2)
    for name, text in sources.items():
        with open(os.path.join(tmp, name + ".mod"), "w") as f:
            f.write(text)
    linked = load_program_dir(tmp)
    manager = InterfaceManager(tmp)
    manager.analyse(linked)  # prime all interfaces
    return sources, manager


def _edit(tmp, name, text):
    with open(os.path.join(tmp, name + ".mod"), "w") as f:
        f.write(text)
    return load_program_dir(tmp)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_separate_analysis(benchmark, table, tmp_path):
    tmp = str(tmp_path)
    sources, manager = _setup(tmp)
    leaf = "M%d" % (N_MODULES - 1)

    def scenario():
        rows = []
        linked = load_program_dir(tmp)
        t_whole, _ = _timed(lambda: analyse_program(linked))

        future = time.time() + 10
        for name in sources:
            os.utime(os.path.join(tmp, name + ".mod"), (future, future))
        t_touch, (_, touched) = _timed(lambda: manager.analyse(linked))

        edited = _edit(tmp, leaf, sources[leaf] + "leaf_extra n x = x\n")
        t_leaf, (_, leafed) = _timed(lambda: manager.analyse(edited))

        edited = _edit(tmp, "M0", "-- cutoff probe\n" + sources["M0"])
        t_cut, (_, cut) = _timed(lambda: manager.analyse(edited))

        edited = _edit(tmp, "M0", sources["M0"] + "root_extra n x = x\n")
        t_root, (_, rooted) = _timed(lambda: manager.analyse(edited))

        rows.append(["whole-program re-analysis", N_MODULES, "%.2f ms" % (t_whole * 1e3)])
        rows.append(["touch all (digests)", len(touched), "%.2f ms" % (t_touch * 1e3)])
        rows.append(["leaf edit", len(leafed), "%.2f ms" % (t_leaf * 1e3)])
        rows.append(["root edit, comment (cutoff)", len(cut), "%.2f ms" % (t_cut * 1e3)])
        rows.append(["root edit, new export", len(rooted), "%.2f ms" % (t_root * 1e3)])
        return rows, t_whole, t_leaf, touched, leafed, cut, rooted

    rows, t_whole, t_leaf, touched, leafed, cut, rooted = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    table(
        "Ablation — separate analysis via interface digests (%d-module chain)"
        % N_MODULES,
        ["scenario", "modules analysed", "time"],
        rows,
    )
    assert touched == []
    assert leafed == ["M%d" % (N_MODULES - 1)]
    assert cut == ["M0"], "early cutoff: the comment edit dirties M0 alone"
    assert rooted == ["M0", "M1"], "cutoff at M1's unchanged interface"
    assert t_leaf * 3 < t_whole, "a leaf edit must be far cheaper"


def test_prime_interfaces_speed(benchmark, tmp_path):
    tmp = str(tmp_path)
    sources = layered_program(N_MODULES, DEFS, seed=2)
    for name, text in sources.items():
        with open(os.path.join(tmp, name + ".mod"), "w") as f:
            f.write(text)
    linked = load_program_dir(tmp)

    def prime():
        return InterfaceManager(tmp).analyse(linked, force=True)

    benchmark(prime)
