"""Ablation (Sec. 4.1 / Sec. 9): separate analysis with interface files.

"Once a module is added to a software system, it can be analysed and
tailored for specialisation once and for all.  For the analysis we only
require that all imported modules have been analysed."

We build an import chain of 24 modules and compare the cost of
refreshing the analysis after an edit:

* **whole-program** — re-analyse everything (a specialiser without
  interface files);
* **leaf edit** — touch the last module; the interface manager
  re-analyses exactly one module;
* **root edit** — touch the first module; everything downstream must be
  re-analysed (the honest worst case: interface files do not help when
  a library at the bottom changes).
"""

import os
import time

import pytest

from repro.bench.generators import layered_program
from repro.bt.analysis import analyse_program
from repro.bt.interface import InterfaceManager
from repro.modsys.program import load_program_dir

N_MODULES = 24
DEFS = 4


def _setup(tmp):
    sources = layered_program(N_MODULES, DEFS, seed=2)
    for name, text in sources.items():
        with open(os.path.join(tmp, name + ".mod"), "w") as f:
            f.write(text)
    linked = load_program_dir(tmp)
    manager = InterfaceManager(tmp)
    manager.analyse(linked)  # prime all interfaces
    return linked, manager


def _touch(tmp, name):
    path = os.path.join(tmp, name + ".mod")
    future = time.time() + 10
    os.utime(path, (future, future))


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_separate_analysis(benchmark, table, tmp_path):
    tmp = str(tmp_path)
    linked, manager = _setup(tmp)

    def scenario():
        rows = []
        t_whole, _ = _timed(lambda: analyse_program(linked))

        _touch(tmp, "M%d" % (N_MODULES - 1))
        t_leaf, (_, analysed_leaf) = _timed(lambda: manager.analyse(linked))

        _touch(tmp, "M0")
        t_root, (_, analysed_root) = _timed(lambda: manager.analyse(linked))

        rows.append(["whole-program re-analysis", N_MODULES, "%.2f ms" % (t_whole * 1e3)])
        rows.append(["leaf edit (interface files)", len(analysed_leaf), "%.2f ms" % (t_leaf * 1e3)])
        rows.append(["root edit (interface files)", len(analysed_root), "%.2f ms" % (t_root * 1e3)])
        return rows, t_whole, t_leaf, len(analysed_leaf), len(analysed_root)

    rows, t_whole, t_leaf, n_leaf, n_root = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    table(
        "Ablation — separate analysis via interface files (%d-module chain)"
        % N_MODULES,
        ["scenario", "modules analysed", "time"],
        rows,
    )
    assert n_leaf == 1
    assert n_root == N_MODULES
    assert t_leaf * 3 < t_whole, "a leaf edit must be far cheaper"


def test_prime_interfaces_speed(benchmark, tmp_path):
    tmp = str(tmp_path)
    sources = layered_program(N_MODULES, DEFS, seed=2)
    for name, text in sources.items():
        with open(os.path.join(tmp, name + ".mod"), "w") as f:
            f.write(text)
    linked = load_program_dir(tmp)

    def prime():
        return InterfaceManager(tmp).analyse(linked, force=True)

    benchmark(prime)
