"""The parallel wave-scheduled pipeline and its content-addressed cache.

Three builds of the same 16-module wide synthetic program (4 layers ×
4 modules, so every wave is 4 modules wide):

* **cold, jobs=1** — serial BTA+cogen, empty cache;
* **cold, jobs=4** — the same work fanned out over a process pool, one
  wave at a time (the paper's separate-analysis property is what makes
  the fan-out sound);
* **warm, jobs=1** — a no-op rebuild against the populated cache, which
  must re-analyse and re-cogen **zero** modules.

Besides the usual table, the run emits a machine-readable
``BENCH_parallel_pipeline.json`` next to this file so later PRs have a
perf trajectory to regress against.

The parallel-speedup assertion only fires when the machine actually has
≥ 4 usable cores; the measurement is recorded either way (a 1-core CI
box shows pool overhead, not parallelism — that is data too, not a
failure of the pipeline).
"""

import json
import os
import time

from repro.bench.generators import wide_program
from repro.pipeline import build_dir
from repro.pipeline.stats import PipelineStats
from repro.api import BuildOptions

LAYERS = 4
WIDTH = 4
DEFS = 20
N_MODULES = LAYERS * WIDTH
JSON_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_parallel_pipeline.json"
)

MIN_PARALLEL_SPEEDUP = 1.8
MIN_WARM_SPEEDUP = 5.0


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_build(src, cache_dir, jobs):
    stats = PipelineStats()
    started = time.perf_counter()
    result = build_dir(src, BuildOptions(cache_dir=cache_dir, jobs=jobs), stats=stats)
    return time.perf_counter() - started, result


def test_parallel_pipeline(benchmark, table, tmp_path):
    src = str(tmp_path / "src")
    os.makedirs(src)
    for name, text in wide_program(LAYERS, WIDTH, DEFS, seed=7).items():
        with open(os.path.join(src, name + ".mod"), "w") as f:
            f.write(text)

    def scenario():
        record = {}
        # Cold builds, best of 2, a fresh cache per round.
        for jobs in (1, 4):
            times = []
            for rnd in range(2):
                cache = str(tmp_path / ("cache-j%d-r%d" % (jobs, rnd)))
                seconds, result = _timed_build(src, cache, jobs)
                assert len(result.analysed) == N_MODULES
                assert result.stats.wave_widths == (WIDTH,) * LAYERS
                times.append(seconds)
                record["cold_jobs%d_stats" % jobs] = result.stats.as_dict()
            record["cold_jobs%d_seconds" % jobs] = min(times)
        # Warm no-op rebuild against a populated cache, best of 3.
        cache = str(tmp_path / "cache-warm")
        cold_seconds, _ = _timed_build(src, cache, 1)
        warm_times = []
        for _ in range(3):
            seconds, warm = _timed_build(src, cache, 1)
            assert warm.analysed == [], "warm rebuild must re-analyse nothing"
            assert len(warm.cached) == N_MODULES
            warm_times.append(seconds)
        record["warm_cold_reference_seconds"] = cold_seconds
        record["warm_seconds"] = min(warm_times)
        record["warm_stats"] = warm.stats.as_dict()
        record["warm_analysed"] = len(warm.analysed)
        record["warm_cogen"] = len(warm.analysed)  # one job does both
        return record

    record = benchmark.pedantic(scenario, rounds=1, iterations=1)

    cpus = _cpus()
    parallel_speedup = (
        record["cold_jobs1_seconds"] / record["cold_jobs4_seconds"]
    )
    warm_speedup = record["warm_cold_reference_seconds"] / record["warm_seconds"]
    record.update(
        {
            "program": {
                "modules": N_MODULES,
                "layers": LAYERS,
                "width": WIDTH,
                "defs_per_module": DEFS,
            },
            "cpus": cpus,
            "parallel_speedup": parallel_speedup,
            "warm_speedup": warm_speedup,
        }
    )
    with open(JSON_PATH, "w") as f:
        json.dump(record, f, indent=1, sort_keys=True)
        f.write("\n")

    table(
        "Parallel wave-scheduled pipeline (%d modules, %d×%d, %d cpus)"
        % (N_MODULES, LAYERS, WIDTH, cpus),
        ["scenario", "modules analysed", "time", "speedup"],
        [
            [
                "cold, jobs=1",
                N_MODULES,
                "%.1f ms" % (record["cold_jobs1_seconds"] * 1e3),
                "1.00x",
            ],
            [
                "cold, jobs=4",
                N_MODULES,
                "%.1f ms" % (record["cold_jobs4_seconds"] * 1e3),
                "%.2fx" % parallel_speedup,
            ],
            [
                "warm rebuild",
                0,
                "%.1f ms" % (record["warm_seconds"] * 1e3),
                "%.2fx" % warm_speedup,
            ],
        ],
    )
    print("wrote", JSON_PATH)

    assert record["warm_analysed"] == 0 and record["warm_cogen"] == 0
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        "warm no-op rebuild only %.2fx faster than cold" % warm_speedup
    )
    if cpus >= 4:
        assert parallel_speedup >= MIN_PARALLEL_SPEEDUP, (
            "--jobs 4 only %.2fx faster than --jobs 1 on %d cpus"
            % (parallel_speedup, cpus)
        )
    else:
        print(
            "NOTE: %d usable cpu(s); parallel speedup %.2fx recorded, "
            "assertion (>= %.1fx) requires >= 4 cores"
            % (cpus, parallel_speedup, MIN_PARALLEL_SPEEDUP)
        )
