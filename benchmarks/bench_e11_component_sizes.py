"""E11 (Sec. 6): implementation component sizes.

The paper reports: "The cogen is around 800 lines of new code [...] Of
this, the cogen proper is less than 100 lines — cogen is very simple.
In contrast the polymorphic binding-time analyser is over 500 lines!
[...] This common code amounts to around 300 lines."

We report the same breakdown for this implementation and assert the same
*qualitative ordering*: the cogen proper is by far the smallest part,
the binding-time analyser dominates it several-fold, and the runtime
library sits in between."""

import os

import pytest

import repro
from repro.bench.metrics import code_lines

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _lines(*relpaths):
    total = 0
    for rel in relpaths:
        with open(os.path.join(ROOT, "src", "repro", rel)) as f:
            total += code_lines(f.read())
    return total


def _components():
    return {
        "cogen proper": _lines("genext/cogen.py"),
        "binding-time analyser": _lines(
            "bt/analysis.py", "bt/bttypes.py", "bt/graph.py", "bt/scheme.py",
            "bt/bt.py",
        ),
        "runtime library": _lines("genext/runtime.py"),
        "front end (lexer/parser/ast)": _lines(
            "lang/lexer.py", "lang/parser.py", "lang/ast.py", "lang/pretty.py"
        ),
        "residual-module machinery": _lines(
            "residual/module.py", "residual/emit.py"
        ),
    }


def test_component_sizes(benchmark, table):
    sizes = benchmark.pedantic(_components, rounds=1, iterations=1)
    rows = sorted(sizes.items(), key=lambda kv: -kv[1])
    table(
        "E11 — implementation component sizes (code lines)",
        ["component", "lines"],
        [[k, v] for k, v in rows],
    )
    # Paper's qualitative claims: the BTA dwarfs the cogen proper; the
    # runtime is a few hundred lines.
    assert sizes["binding-time analyser"] > 1.5 * sizes["cogen proper"]
    assert sizes["runtime library"] < sizes["binding-time analyser"]
