"""E8 (Sec. 5): the residual module structure of the paper's example.

Regenerates the Power/Twice/Main residual program, asserting the exact
structure printed in the paper (modules Power, PowerTwice, Main; three
polyvariant ``power`` versions; the ``twice`` specialisation in the
combination module), and benchmarks the end-to-end specialisation.
"""

import pytest

import repro
from repro.bench.generators import power_twice_main_source
from repro.api import SpecOptions


def _gp():
    return repro.compile_genexts(power_twice_main_source(), SpecOptions(force_residual={"power", "twice", "main"}))


def test_paper_example_end_to_end(benchmark, table):
    gp = _gp()
    result = benchmark(repro.specialise, gp, "main", {})
    modules = {m.name: m for m in result.program.modules}
    assert sorted(modules) == ["Main", "Power", "PowerTwice"]
    assert len(modules["Power"].defs) == 3
    assert modules["PowerTwice"].imports == ("Power",)
    assert modules["Main"].imports == ("PowerTwice",)
    assert result.run(2) == 512
    table(
        "E8 — residual module structure (paper Sec. 5)",
        ["module", "imports", "definitions"],
        [
            [
                m.name,
                ", ".join(m.imports) or "-",
                ", ".join(d.name for d in m.defs),
            ]
            for m in result.program.modules
        ],
    )


def test_higher_order_placement(benchmark, table):
    gp = repro.compile_genexts("""
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)

module B where
import A

g x = x + 1
h zs = map (\\x -> g x) zs
""", SpecOptions(force_residual={"g", "h"}))
    result = benchmark(repro.specialise, gp, "h", {})
    assert [m.name for m in result.program.modules] == ["B"]
    table(
        "E8b — map specialised to a closure over g stays with g",
        ["module", "definitions"],
        [[m.name, ", ".join(d.name for d in m.defs)] for m in result.program.modules],
    )
