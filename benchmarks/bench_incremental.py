"""Definition-level incremental recompilation on a deep import chain.

The workload is :func:`repro.bench.generators.layered_program`: a
64-module import chain ``M0 <- M1 <- ... <- M63`` with 6 definitions
per module, of which only ``m{m}_f0`` is referenced across the module
boundary.  The trajectory:

* **cold** — full analysis of every module into an empty cache;
* **warm** — a no-op rebuild (every module a cache hit);
* **def edit** — a body-only edit of one *unreferenced* definition in
  the root module ``M0``: the def-level engine re-derives exactly that
  definition, lands on a byte-identical scheme digest (early cutoff),
  and every dependent module stays cached;
* **scheme edit** — an edit that *changes* the definition's scheme:
  ``M0``'s interface text changes, but the direct importer's def-level
  key reads only the digests of the definitions it actually references,
  so zero dependent modules are re-analysed;
* **module-level baseline** — the same body edit rebuilt with
  ``incremental=False`` (whole-module keys, whole-module re-analysis).

The incremental rebuild's artifacts are compared byte-for-byte against
a from-scratch build of the edited sources; the emitted
``BENCH_incremental.json`` (``repro.bench.incremental/v1``,
schema-checked by ``python -m repro.obs.schema``) refuses to record a
run where they differ or where the edit demonstrated no cutoff.

Run directly — no pytest machinery:

    PYTHONPATH=src python benchmarks/bench_incremental.py

``MSPEC_BENCH_TINY=1`` shrinks the chain to 8 modules for CI smoke
runs.
"""

import json
import os
import re
import shutil
import sys
import tempfile
import time

from repro.api import BuildOptions
from repro.bench.generators import layered_program
from repro.obs.schema import (
    BENCH_INCREMENTAL_SCHEMA,
    validate_bench_incremental,
)
from repro.pipeline import build_dir
from repro.pipeline.cache import IFACE_KIND

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_incremental.json"
)

TINY = os.environ.get("MSPEC_BENCH_TINY") == "1"
N_MODULES = 8 if TINY else 64
DEFS = 6
SEED = 11


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _write_all(src, sources):
    for name, text in sources.items():
        with open(os.path.join(src, name + ".mod"), "w") as f:
            f.write(text)


def _timed_build(src, cache, **opts):
    started = time.perf_counter()
    result = build_dir(src, BuildOptions(cache_dir=cache, **opts))
    seconds = time.perf_counter() - started
    assert result.report.ok, result.report.render()
    return seconds, result


def _pick_unreferenced_def(sources):
    """A definition of M0 that no other module references: any
    ``m0_f{i}`` except the one M1's boundary definition calls."""
    called = set(re.findall(r"\bm0_f\d+\b", sources.get("M1", "")))
    for i in range(1, DEFS):
        name = "m0_f%d" % i
        if name not in called:
            return name
    raise AssertionError("every M0 def is referenced by M1")


def _edit_def(text, def_name, scheme_change=False):
    """Rewrite ``def_name``'s body.  The default edit wraps the body in
    a statically-decided conditional — new bytes, same principal
    scheme.  ``scheme_change=True`` replaces the recursive loop with
    the identity on ``x`` instead."""
    out = []
    for line in text.splitlines():
        if line.startswith(def_name + " "):
            lhs, rhs = line.split(" = ", 1)
            if scheme_change:
                line = "%s = x" % lhs
            else:
                line = "%s = if 0 == 0 then (%s) else (%s)" % (lhs, rhs, rhs)
        out.append(line)
    return "\n".join(out) + "\n"


def _artifacts(result):
    out = {}
    for m in result.genexts:
        iface = result.cache.get_text(result.keys[m.name], IFACE_KIND)
        out[m.name] = (iface, m.source)
    return out


def main():
    cpus = _cpus()
    sources = layered_program(N_MODULES, DEFS, seed=SEED)
    target = _pick_unreferenced_def(sources)
    body_edit = dict(sources, M0=_edit_def(sources["M0"], target))
    scheme_edit = dict(
        sources, M0=_edit_def(sources["M0"], target, scheme_change=True)
    )

    tmp = tempfile.mkdtemp(prefix="mspec-bench-incr-")
    try:
        src = os.path.join(tmp, "src")
        cache = os.path.join(tmp, "cache")
        os.makedirs(src)
        _write_all(src, sources)

        cold_s, cold = _timed_build(src, cache)
        assert len(cold.analysed) == N_MODULES

        warm_s, warm = _timed_build(src, cache)
        assert warm.analysed == [] and warm.incremental == []
        assert len(warm.cached) == N_MODULES

        # Body-only edit of an unreferenced def in the chain's root.
        _write_all(src, body_edit)
        edit_s, edited = _timed_build(src, cache)
        stats = edited.stats.as_dict()
        assert edited.analysed == [], (
            "def-level edit fully re-analysed %s" % edited.analysed
        )
        assert edited.incremental == ["M0"]
        assert len(edited.cached) == N_MODULES - 1
        assert stats["defs_re_derived"] == 1
        assert stats["defs_reused"] == DEFS - 1

        # Byte identity against a from-scratch build of the same
        # (edited) sources.
        scratch_src = os.path.join(tmp, "scratch-src")
        os.makedirs(scratch_src)
        _write_all(scratch_src, body_edit)
        _, scratch = _timed_build(scratch_src, os.path.join(tmp, "scratch"))
        identical = (
            edited.keys == scratch.keys
            and _artifacts(edited) == _artifacts(scratch)
        )

        # Scheme-changing edit: M0's interface changes, but no importer
        # references the edited def — zero dependent re-analyses.
        _write_all(src, scheme_edit)
        scheme_s, schemed = _timed_build(src, cache)
        scheme_stats = schemed.stats.as_dict()
        assert schemed.analysed == [], (
            "scheme edit re-analysed dependents: %s" % schemed.analysed
        )
        assert schemed.incremental == ["M0"]
        assert scheme_stats["modules_cutoff_skipped"] >= 1

        # Module-level baseline: the same body edit with the def-level
        # engine off.
        base_src = os.path.join(tmp, "base-src")
        base_cache = os.path.join(tmp, "base-cache")
        os.makedirs(base_src)
        _write_all(base_src, sources)
        _timed_build(base_src, base_cache, incremental=False)
        _write_all(base_src, body_edit)
        module_s, module_level = _timed_build(
            base_src, base_cache, incremental=False
        )
        assert module_level.analysed == ["M0"]
        assert module_level.incremental == []
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    counters = {
        "defs_reused": stats["defs_reused"],
        "defs_re_derived": stats["defs_re_derived"],
        "defs_cut_off": stats["defs_cut_off"],
        "modules_incremental": stats["n_incremental"],
        "modules_cutoff_skipped": scheme_stats["modules_cutoff_skipped"],
        "incremental_fallbacks": stats["incremental_fallbacks"],
    }
    results = {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "def_edit_incremental_s": edit_s,
        "scheme_edit_incremental_s": scheme_s,
        "def_edit_module_level_s": module_s,
        "incremental_vs_cold_speedup": cold_s / edit_s,
        "def_vs_module_level_speedup": module_s / edit_s,
    }
    doc = {
        "schema": BENCH_INCREMENTAL_SCHEMA,
        "cpus": cpus,
        "tiny": TINY,
        "workload": {
            "modules": N_MODULES,
            "defs_per_module": DEFS,
            "shape": "import chain (layered_program, seed %d)" % SEED,
            "edited_def": target,
        },
        "results": results,
        "counters": counters,
        "identical": identical,
    }
    problems = validate_bench_incremental(doc)
    assert not problems, problems
    with open(JSON_PATH, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    print(
        "== incremental recompilation (%d-module chain, %d defs/module, "
        "%d cpus%s) ==" % (N_MODULES, DEFS, cpus, ", tiny" if TINY else "")
    )
    rows = [
        ("cold build", cold_s, 1.0),
        ("warm no-op rebuild", warm_s, cold_s / warm_s),
        ("edit %s, def-level" % target, edit_s, cold_s / edit_s),
        ("edit %s, scheme change" % target, scheme_s, cold_s / scheme_s),
        ("edit %s, module-level" % target, module_s, cold_s / module_s),
    ]
    for label, seconds, speedup in rows:
        print("%-32s %10.3f ms  %8.2fx" % (label, seconds * 1e3, speedup))
    print(
        "defs: %d reused, %d re-derived, %d cut off; byte-identical: %s"
        % (
            counters["defs_reused"],
            counters["defs_re_derived"],
            counters["defs_cut_off"],
            identical,
        )
    )
    print("wrote", JSON_PATH)

    assert identical, "incremental artifacts differ from a cold build's"
    assert counters["defs_cut_off"] >= 1, (
        "the single-def edit demonstrated no early cutoff"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
