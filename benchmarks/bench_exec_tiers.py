"""The execution ladder's price list: tier 1 vs tier 2, and the restart.

``repro.backend.tiers`` climbs three rungs — interpret the general
program (tier 0), interpret the specialised residual (tier 1), run the
residual emitted and ``compile()``d to real Python (tier 2) — and
persists the tier-2 artifact so a *restarted* process serves a
previously-hot goal without re-specialising or re-compiling from the
AST.  This harness prices each rung on the first-Futamura workload
(the register-machine interpreter specialised to a static machine
program) and then proves the durable half of the claim against real
daemon subprocesses:

* **per-rung warm cost** — best-of per-call seconds for tier 0
  (general interpreter on the full argument list), tier 1 (residual
  interpreted by the object-language interpreter, warm residual
  cache), and tier 2 (the compiled Python entry loaded back from the
  persisted artifact); the headline ``tier2_vs_tier1_speedup`` must
  clear the 10x floor the schema validator enforces;
* **ladder dispatch** — the organic hot path (memo probe + native
  call) through :meth:`TierLadder.call`, i.e. what a caller actually
  pays once a goal is hot;
* **identity** — all three forced rungs must produce byte-identical
  values on every dynamic input (the same differential ``repro.check``
  runs on the pinned corpus);
* **restart** — daemon A (``mspec serve --tier-hot``) promotes a goal
  to tier 2 and is shut down; daemon B, a cold process on the same
  ``--cache-dir``, must answer the first request at tier 2 with origin
  ``code`` and counters showing zero specialisations and zero
  ``compile()``s from the AST — only artifact loads.

The emitted ``BENCH_exec_tiers.json`` (``repro.bench.exec_tiers/v1``)
is schema-checked by ``repro.obs.schema.validate_bench_exec_tiers``,
which refuses to record a sub-10x speedup or a restart that
re-specialised.

Run directly — no pytest machinery:

    PYTHONPATH=src python benchmarks/bench_exec_tiers.py

``MSPEC_BENCH_TINY=1`` shrinks the workload for CI smoke runs (the
10x floor still holds there: interpreting even a small residual costs
orders of magnitude more than calling its compiled form).
"""

import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import repro  # noqa: E402
from repro.api import SpecOptions  # noqa: E402
from repro.backend.tiers import (  # noqa: E402
    TierLadder,
    TierPolicy,
    load_compiled,
)
from repro.bench.generators import (  # noqa: E402
    machine_interpreter_source,
    random_machine_program,
)
from repro.genext.engine import specialise  # noqa: E402
from repro.modsys.program import load_program  # noqa: E402
from repro.obs import Obs  # noqa: E402
from repro.obs.schema import (  # noqa: E402
    BENCH_EXEC_TIERS_SCHEMA,
    validate_bench_exec_tiers,
)
from repro.serve import ServeClient  # noqa: E402

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_exec_tiers.json"
)

TINY = os.environ.get("MSPEC_BENCH_TINY") == "1"
PROGRAM_LENGTH = 12 if TINY else 48
DYN_INPUTS = ((0,), (1,), (5,), (9,), (13,))
ROUNDS = 3 if TINY else 5
T0_CALLS = 5 if TINY else 10
T1_CALLS = 10 if TINY else 30
T2_CALLS = 1_000 if TINY else 5_000
JOBS = 2
TIER_HOT = 2


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _best_per_call(fn, calls):
    """Best-of-ROUNDS average per-call seconds for ``fn()``."""
    best = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(calls):
            fn()
        seconds = (time.perf_counter() - started) / calls
        best = seconds if best is None else min(best, seconds)
    return best


class Daemon:
    """One ``mspec serve --tier-hot`` subprocess, shut down gracefully."""

    def __init__(self, moddir, cache_dir, name):
        self.socket_path = os.path.join(moddir, ".bench-tiers-%s.sock" % name)
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                moddir,
                "--socket",
                self.socket_path,
                "--jobs",
                str(JOBS),
                "--cache-dir",
                cache_dir,
                "--tier-hot",
                str(TIER_HOT),
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        with ServeClient.wait_ready(self.socket_path, timeout=120.0) as c:
            c.ping()

    def client(self):
        return ServeClient.connect(self.socket_path)

    def stop(self):
        with self.client() as c:
            c.shutdown()
        out, err = self.proc.communicate(timeout=120)
        assert self.proc.returncode == 0, (
            "daemon exit %r: %s" % (self.proc.returncode, err.decode())
        )


def bench_rungs(tmp, prog):
    """(results dict, identical verdict) for the in-process phase."""
    gp = repro.compile_genexts(machine_interpreter_source())
    linked = load_program(machine_interpreter_source())
    cache_dir = os.path.join(tmp, "tiers-cache")
    options = SpecOptions(
        cache_dir=cache_dir,
        tier_policy=TierPolicy(warm_after=1, hot_after=2),
    )
    obs = Obs()
    ladder = TierLadder(gp, options=options, obs=obs, program=linked)
    static = {"prog": prog}

    # Identity: every rung, every dynamic input, one answer.
    identical = True
    for vec in DYN_INPUTS:
        values = [
            ladder.call("run", static, vec, tier=tier).value
            for tier in (0, 1, 2)
        ]
        identical &= values[0] == values[1] == values[2]

    # The forced tier-2 probe above persisted the artifact; load the
    # compiled entry back the way a cold process would.
    key = ladder.key_for("run", static)
    fn = load_compiled(ladder.store, key)
    assert fn is not None and fn.origin == "code"

    # Tier-1 residual (warm residual cache — the decode memo makes the
    # re-probe cheap, but the run still walks the residual AST).
    result = specialise(gp, "run", static, options, obs=obs)

    vec = DYN_INPUTS[-1]
    tier0_s = _best_per_call(
        lambda: ladder.call("run", static, vec, tier=0), T0_CALLS
    )
    tier1_s = _best_per_call(lambda: result.run(*vec), T1_CALLS)
    tier2_s = _best_per_call(lambda: fn(*vec), T2_CALLS)

    # The organic hot path: memo probe + native call through the
    # ladder (includes the cache-key fingerprint per call).
    ladder.call("run", static, vec)  # ensure memoised
    warm_call_s = _best_per_call(
        lambda: ladder.call("run", static, vec), T1_CALLS
    )

    counters = obs.metrics.snapshot()["counters"]
    results = {
        "tier0_run_s": tier0_s,
        "tier1_run_s": tier1_s,
        "tier2_run_s": tier2_s,
        "tier2_vs_tier1_speedup": tier1_s / tier2_s,
        "tier1_vs_tier0_speedup": tier0_s / tier1_s,
        "ladder_warm_call_s": warm_call_s,
        "tier_emitted": counters.get("tier.emitted", 0),
        "tier_code_loads": counters.get("tier.code_loads", 0),
    }
    return results, identical


def bench_restart(tmp, prog):
    """Promote under daemon A, restart as daemon B on the same cache,
    and return the validator's restart evidence."""
    moddir = os.path.join(tmp, "modules")
    os.makedirs(moddir)
    with open(os.path.join(moddir, "Machine.mod"), "w") as f:
        f.write(machine_interpreter_source())
    cache_dir = os.path.join(tmp, "serve-cache")

    daemon = Daemon(moddir, cache_dir, "a")
    try:
        with daemon.client() as client:
            tiers_seen = []
            for _ in range(TIER_HOT + 1):
                response = client.run("run", {"prog": prog}, (5,))
                assert response["ok"], response
                tiers_seen.append(response["tier"])
            assert tiers_seen[-1] == 2, tiers_seen
            counters = client.metrics()["metrics"]["counters"]
            assert counters.get("tier.promotions", 0) >= 1, counters
    finally:
        daemon.stop()

    # Daemon B: a cold process, same cache directory.  The first
    # request must come back at tier 2 from the persisted code object —
    # no specialiser run, no compile() from the AST.
    daemon = Daemon(moddir, cache_dir, "b")
    try:
        started = time.perf_counter()
        with daemon.client() as client:
            response = client.run("run", {"prog": prog}, (5,))
            first_run_s = time.perf_counter() - started
            assert response["ok"], response
            counters = client.metrics()["metrics"]["counters"]
    finally:
        daemon.stop()

    return {
        "served_from_artifact": (
            response["tier"] == 2 and response["origin"] == "code"
        ),
        "tier": response["tier"],
        "origin": response["origin"],
        "first_run_s": first_run_s,
        "code_loads": counters.get("tier.code_loads", 0),
        "specialisations": counters.get("spec.specialisations", 0),
        "emitted": counters.get("tier.emitted", 0),
    }


def main():
    cpus = _cpus()
    prog = random_machine_program(PROGRAM_LENGTH, seed=4)

    with tempfile.TemporaryDirectory() as tmp:
        results, identical = bench_rungs(tmp, prog)
        restart = bench_restart(tmp, prog)

    doc = {
        "schema": BENCH_EXEC_TIERS_SCHEMA,
        "cpus": cpus,
        "tiny": TINY,
        "workload": {
            "goal": "run",
            "machine_program_length": PROGRAM_LENGTH,
            "dyn_inputs": len(DYN_INPUTS),
            "rounds": ROUNDS,
            "tier_hot": TIER_HOT,
        },
        "results": results,
        "identical": identical,
        "restart": restart,
    }
    problems = validate_bench_exec_tiers(doc)
    assert not problems, problems
    with open(JSON_PATH, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    print(
        "== execution tiers (program length %d, %d cpus%s) =="
        % (PROGRAM_LENGTH, cpus, ", tiny" if TINY else "")
    )
    rows = [
        ("tier 0: general interp", results["tier0_run_s"]),
        ("tier 1: residual interp", results["tier1_run_s"]),
        ("tier 2: compiled python", results["tier2_run_s"]),
        ("ladder warm call (memo)", results["ladder_warm_call_s"]),
    ]
    for label, seconds in rows:
        print(
            "%-28s %12.6f ms  %10.2fx vs tier 1"
            % (label, seconds * 1e3, results["tier1_run_s"] / seconds)
        )
    print(
        "tier 2 vs tier 1: %.1fx; identical across rungs: %s"
        % (results["tier2_vs_tier1_speedup"], identical)
    )
    print(
        "restart: tier %s (%s) in %.3f ms; code_loads=%d "
        "specialisations=%d emitted=%d"
        % (
            restart["tier"],
            restart["origin"],
            restart["first_run_s"] * 1e3,
            restart["code_loads"],
            restart["specialisations"],
            restart["emitted"],
        )
    )
    print("wrote", JSON_PATH)

    assert identical, "tiers disagree on the machine workload"
    assert restart["served_from_artifact"], restart
    return 0


if __name__ == "__main__":
    sys.exit(main())
