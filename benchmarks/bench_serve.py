"""The serve daemon's load test: warm latency, mixed throughput, identity.

The daemon's reason to exist is economic: the one-shot CLI pays
interpreter startup, parse, analyse, cogen, link, and pool setup on
*every* request, while ``mspec serve`` pays them once and answers warm
requests from the resident residual cache in-parent.  This harness
measures that gap against a real daemon subprocess with real concurrent
clients, on the same first-Futamura workload as
``bench_spec_throughput.py`` (specialising the register-machine
interpreter with respect to machine programs):

* **cold CLI baseline** — one fresh ``mspec specialise`` subprocess per
  request, empty cache: the full price the daemon amortises;
* **warm daemon latency** — p50/p99 over many requests answered from
  the hot cache through the socket;
* **mixed workload throughput** — N concurrent clients issuing a
  warm/cold mix over K distinct programs, against the *serial one-shot*
  baseline: the same N clients served without a daemon, i.e. one
  ``mspec specialise --batch`` subprocess per client run back-to-back
  (``--jobs 1``), sharing a persistent ``--cache-dir`` — the best a
  non-resident pipeline can do, which still re-pays interpreter
  startup, parse, analyse, cogen, and link per client;
* **saturation throughput** — concurrent clients hammering warm
  requests, reported as requests/second.

Every daemon answer is byte-compared against the one-shot CLI's
residual program for the same request; the emitted ``BENCH_serve.json``
(``repro.bench.serve/v1``, schema-checked in CI by
``python -m repro.obs.schema``) refuses to record anything else.

Run directly — no pytest machinery:

    PYTHONPATH=src python benchmarks/bench_serve.py

``MSPEC_BENCH_TINY=1`` shrinks the workload for CI smoke runs; speedup
assertions that only hold at full size are reported but not enforced
there.
"""

import json
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.generators import (  # noqa: E402
    machine_interpreter_source,
    random_machine_program,
)
from repro.obs.schema import (  # noqa: E402
    BENCH_SERVE_SCHEMA,
    validate_bench_serve,
)
from repro.serve import ServeClient  # noqa: E402

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_serve.json"
)

TINY = os.environ.get("MSPEC_BENCH_TINY") == "1"
PROGRAM_LENGTH = 12 if TINY else 48
JOBS = 2
WARM_REQUESTS = 50 if TINY else 200
MIXED_THREADS = 2 if TINY else 4
MIXED_PER_THREAD = 8 if TINY else 25
MIXED_UNIQUE = 2 if TINY else 4
SATURATION_REQUESTS = 50 if TINY else 400

MIN_WARM_SPEEDUP_VS_CLI = 50.0
MIN_MIXED_SPEEDUP = 1.0


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _cli(argv, **kw):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + argv,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        **kw,
    )


def _cli_batch_programs(moddir, requests, cache_dir, jobs=1):
    """One one-shot ``mspec specialise --batch`` subprocess; returns
    (wall seconds, list of residual program texts aligned with
    ``requests``)."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        json.dump(
            [{"goal": g, "static_args": s} for g, s in requests], f
        )
        batch_file = f.name
    try:
        started = time.perf_counter()
        proc = _cli(
            [
                "specialise",
                moddir,
                "--batch",
                batch_file,
                "--jobs",
                str(jobs),
                "--cache-dir",
                cache_dir,
                "--json",
            ]
        )
        seconds = time.perf_counter() - started
        assert proc.returncode == 0, proc.stderr.decode()
        doc = json.loads(proc.stdout.decode())
        programs = [r["program"] for r in doc["report"]["requests"]]
        return seconds, programs
    finally:
        os.unlink(batch_file)


class Daemon:
    """One ``mspec serve`` subprocess, shut down gracefully."""

    def __init__(self, moddir, cache_dir):
        self.socket_path = os.path.join(moddir, ".bench-serve.sock")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                moddir,
                "--socket",
                self.socket_path,
                "--jobs",
                str(JOBS),
                "--cache-dir",
                cache_dir,
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        with ServeClient.wait_ready(self.socket_path, timeout=120.0) as c:
            c.ping()

    def client(self):
        return ServeClient.connect(self.socket_path)

    def stop(self):
        with self.client() as c:
            c.shutdown()
        out, err = self.proc.communicate(timeout=120)
        assert self.proc.returncode == 0, (
            "daemon exit %r: %s" % (self.proc.returncode, err.decode())
        )


def bench_cold_cli(moddir, request, tmp):
    """Best-of-3 fresh one-shot CLI runs, empty cache each: the full
    per-request price the daemon exists to amortise."""
    times = []
    programs = []
    for rnd in range(3):
        cache = os.path.join(tmp, "cli-cold-%d" % rnd)
        seconds, progs = _cli_batch_programs(moddir, [request], cache)
        times.append(seconds)
        programs.append(progs[0])
    assert len(set(programs)) == 1
    return min(times), programs[0]


def bench_warm_daemon(daemon, request, expected_program):
    """Per-request latency once the daemon's cache is hot."""
    goal, static = request
    latencies = []
    with daemon.client() as client:
        first = client.specialise(goal, static)
        assert first["ok"], first
        assert first["result"]["program"] == expected_program
        for _ in range(WARM_REQUESTS):
            started = time.perf_counter()
            response = client.specialise(goal, static)
            latencies.append(time.perf_counter() - started)
            assert response["ok"] and response["served"] == "warm", response
            assert response["result"]["program"] == expected_program
    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    return p50, p99


def _mixed_requests():
    """The concurrent phase's per-thread request lists over fresh
    (never-cached) programs, plus the flat multiset for the serial
    baseline."""
    progs = [
        random_machine_program(PROGRAM_LENGTH, seed=100 + s)
        for s in range(MIXED_UNIQUE)
    ]
    per_thread = []
    for t in range(MIXED_THREADS):
        reqs = [
            ("run", {"prog": progs[(t + i) % MIXED_UNIQUE]})
            for i in range(MIXED_PER_THREAD)
        ]
        per_thread.append(reqs)
    flat = [r for reqs in per_thread for r in reqs]
    return per_thread, flat


def bench_mixed(daemon, per_thread):
    """Concurrent clients over a warm/cold mix; returns (wall seconds,
    {prog-repr: set of program texts})."""
    answers = {}
    answers_lock = threading.Lock()
    errors = []

    def worker(reqs):
        try:
            with daemon.client() as client:
                for goal, static in reqs:
                    response = client.specialise(goal, static)
                    assert response["ok"], response
                    key = repr(sorted(static.items()))
                    with answers_lock:
                        answers.setdefault(key, set()).add(
                            response["result"]["program"]
                        )
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(reqs,)) for reqs in per_thread
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - started
    assert not errors, errors
    return seconds, answers


def bench_saturation(daemon, request):
    """Concurrent clients hammering one warm request: requests/second
    at the admission layer's steady state."""
    goal, static = request
    per_thread = SATURATION_REQUESTS // MIXED_THREADS
    errors = []

    def worker():
        try:
            with daemon.client() as client:
                for _ in range(per_thread):
                    response = client.specialise(goal, static)
                    assert response["ok"], response
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker) for _ in range(MIXED_THREADS)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - started
    assert not errors, errors
    return (per_thread * MIXED_THREADS) / seconds


def main():
    cpus = _cpus()
    identical = True

    with tempfile.TemporaryDirectory() as tmp:
        moddir = os.path.join(tmp, "modules")
        os.makedirs(moddir)
        with open(os.path.join(moddir, "Machine.mod"), "w") as f:
            f.write(machine_interpreter_source())

        warm_prog = random_machine_program(PROGRAM_LENGTH, seed=7)
        warm_request = ("run", {"prog": warm_prog})

        cold_cli_s, cli_program = bench_cold_cli(moddir, warm_request, tmp)

        daemon = Daemon(moddir, cache_dir=os.path.join(tmp, "serve-cache"))
        try:
            # One cold daemon request, timed through the socket.
            with daemon.client() as client:
                started = time.perf_counter()
                response = client.specialise(*warm_request)
                cold_daemon_s = time.perf_counter() - started
            assert response["ok"] and response["served"] == "cold", response
            identical &= response["result"]["program"] == cli_program

            warm_p50, warm_p99 = bench_warm_daemon(
                daemon, warm_request, cli_program
            )

            per_thread, flat = _mixed_requests()
            mixed_daemon_s, answers = bench_mixed(daemon, per_thread)
            identical &= all(len(texts) == 1 for texts in answers.values())

            saturation_rps = bench_saturation(daemon, warm_request)

            with daemon.client() as client:
                counters = client.metrics()["metrics"]["counters"]
        finally:
            daemon.stop()

        # Serial one-shot baseline: the same clients without a daemon —
        # one CLI subprocess per client, back to back, sharing one
        # persistent cache (so later clients get disk-warm answers;
        # what they cannot share is the resident pipeline).
        serial_cache = os.path.join(tmp, "serial-cache")
        mixed_serial_s = 0.0
        for reqs in per_thread:
            seconds, serial_programs = _cli_batch_programs(
                moddir, reqs, serial_cache
            )
            mixed_serial_s += seconds
            for (goal, static), program in zip(reqs, serial_programs):
                key = repr(sorted(static.items()))
                identical &= answers[key] == {program}

    results = {
        "cold_cli_s": cold_cli_s,
        "cold_daemon_s": cold_daemon_s,
        "warm_daemon_p50_s": warm_p50,
        "warm_daemon_p99_s": warm_p99,
        "warm_speedup_vs_cli": cold_cli_s / warm_p50,
        "mixed_daemon_s": mixed_daemon_s,
        "mixed_serial_cli_s": mixed_serial_s,
        "mixed_speedup": mixed_serial_s / mixed_daemon_s,
        "mixed_daemon_rps": len(flat) / mixed_daemon_s,
        "saturation_rps": saturation_rps,
        "serve_warm_hits": counters.get("serve.warm", 0),
        "serve_cold_runs": counters.get("serve.cold", 0),
        "serve_rejections": counters.get("serve.rejections", 0),
    }

    doc = {
        "schema": BENCH_SERVE_SCHEMA,
        "cpus": cpus,
        "tiny": TINY,
        "workload": {
            "goal": "run",
            "machine_program_length": PROGRAM_LENGTH,
            "jobs": JOBS,
            "warm_requests": WARM_REQUESTS,
            "mixed_threads": MIXED_THREADS,
            "mixed_requests": len(flat),
            "mixed_unique": MIXED_UNIQUE,
            "saturation_requests": SATURATION_REQUESTS,
        },
        "results": results,
        "identical": identical,
    }
    problems = validate_bench_serve(doc)
    assert not problems, problems
    with open(JSON_PATH, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    print(
        "== serve daemon (program length %d, %d cpus, jobs %d%s) =="
        % (PROGRAM_LENGTH, cpus, JOBS, ", tiny" if TINY else "")
    )
    rows = [
        ("one-shot CLI, cold", cold_cli_s, 1.0),
        ("daemon, cold (socket)", cold_daemon_s, cold_cli_s / cold_daemon_s),
        ("daemon, warm p50", warm_p50, results["warm_speedup_vs_cli"]),
        ("daemon, warm p99", warm_p99, cold_cli_s / warm_p99),
    ]
    for label, seconds, speedup in rows:
        print("%-28s %10.3f ms  %8.2fx" % (label, seconds * 1e3, speedup))
    print(
        "mixed x%d (%d clients):  daemon %.3fs (%.0f req/s)  "
        "vs serial one-shot %.3fs  -> %.2fx"
        % (
            len(flat),
            MIXED_THREADS,
            mixed_daemon_s,
            results["mixed_daemon_rps"],
            mixed_serial_s,
            results["mixed_speedup"],
        )
    )
    print(
        "saturation: %.0f warm req/s; daemon counters: %d warm, %d cold, "
        "%d rejected; byte-identical: %s"
        % (
            saturation_rps,
            results["serve_warm_hits"],
            results["serve_cold_runs"],
            results["serve_rejections"],
            identical,
        )
    )
    print("wrote", JSON_PATH)

    assert identical, "daemon residuals differ from the one-shot CLI's"
    if not TINY:
        assert results["warm_speedup_vs_cli"] >= MIN_WARM_SPEEDUP_VS_CLI, (
            "daemon warm p50 only %.1fx faster than the cold CLI"
            % results["warm_speedup_vs_cli"]
        )
        assert results["mixed_speedup"] >= MIN_MIXED_SPEEDUP, (
            "mixed workload only %.2fx the serial one-shot baseline"
            % results["mixed_speedup"]
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
