"""Polyvariant division and size-change unfolding on E4-E6 workloads.

Three scenarios from the paper's experiment families (Sec. 6), each run
under the default strategies and the non-default corners of
``docs/analyses.md``:

* **memory-lookup** (E5 family) — a machine's static memory consulted
  through a null-guarded lookup at one dynamic address.  Under the
  Similix lub rule the dynamic index residualises the whole loop; the
  size-change analysis proves the static list strictly decreases, so
  ``unfolding="size-change"`` collapses the residual to a closed chain
  of conditionals over the memory cells.
* **library-lookup** (E6 family) — a library of static tables, a client
  consulting each at a dynamic index.  Same lookup shape, one call site
  per table, so the unfold win scales with the library.
* **poly-dispatch** (E4 family) — library loops each used at two ground
  binding-time patterns.  ``division="poly"`` clones per-pattern
  generating extensions; the benchmark records the genext-size cost and
  *requires* the residual program to stay byte-identical to the
  monovariant one (versions are a cogen artefact, not a semantics
  change).

Every scenario's residuals are value-checked against direct
interpretation of the source program; the emitted
``BENCH_polyvariance.json`` (``repro.bench.polyvariance/v1``,
schema-checked by ``python -m repro.obs.schema``) refuses to record a
run where any value diverges, where poly changed a residual byte, or
where fewer than two scenarios show a measurable size-change win.

Run directly — no pytest machinery:

    PYTHONPATH=src python benchmarks/bench_polyvariance.py

``MSPEC_BENCH_TINY=1`` shrinks the workloads for CI smoke runs.
"""

import json
import os
import sys
import time

import repro
from repro.api import SpecOptions
from repro.bench.generators import (
    dual_pattern_program,
    library_lookup_program,
    memory_lookup_program,
)
from repro.bt.analysis import analyse_program
from repro.genext.engine import specialise
from repro.interp import run_program
from repro.lang.pretty import pretty_program
from repro.modsys.program import load_program
from repro.obs.schema import (
    BENCH_POLYVARIANCE_SCHEMA,
    validate_bench_polyvariance,
)

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_polyvariance.json"
)

TINY = os.environ.get("MSPEC_BENCH_TINY") == "1"
MEMORY_CELLS = 4 if TINY else 8
LIB_TABLES = 2 if TINY else 4
LIB_CELLS = 4 if TINY else 8
POLY_FUNCS = 2 if TINY else 4
SEED = 7
REPS = 50 if TINY else 400


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _full_args(linked, goal, static, vec, dyn_params):
    """The goal's full argument list in parameter order."""
    d = {name: value for name, value in static.items()}
    d.update(dict(zip(dyn_params, vec)))
    _, goal_def = linked.find_def(goal)
    params = goal_def.params
    return [d[p] for p in params]


def _specialise(source, goal, static, unfolding="lub", division="mono"):
    opts = SpecOptions(unfolding=unfolding, division=division)
    gp = repro.compile_genexts(source, opts)
    res = specialise(gp, goal, static, options=opts)
    genext_chars = sum(len(m.source) for m in gp.modules.values())
    return res, pretty_program(res.program), genext_chars


def _time_runs(res, dyn_vectors):
    """Mean warm residual run time in microseconds."""
    for vec in dyn_vectors:  # warm-up: compile/caches out of the timing
        res.run(*vec)
    started = time.perf_counter()
    for _ in range(REPS):
        for vec in dyn_vectors:
            res.run(*vec)
    return (time.perf_counter() - started) / (REPS * len(dyn_vectors)) * 1e6


def _scenario(source, goal, static, dyn_params, dyn_vectors):
    """One scenario: (mono, lub) baseline vs (mono, size-change), with
    (poly, lub) byte-identity and interpreter value checks on top.
    Returns ``(record, values_ok, poly_ok)``."""
    linked = load_program(source)
    expected = {
        vec: run_program(
            linked, goal, _full_args(linked, goal, static, vec, dyn_params)
        )
        for vec in dyn_vectors
    }

    base_res, base_text, base_genext = _specialise(source, goal, static)
    sc_res, sc_text, _ = _specialise(
        source, goal, static, unfolding="size-change"
    )
    poly_res, poly_text, poly_genext = _specialise(
        source, goal, static, division="poly"
    )

    values_ok = all(
        res.run(*vec) == expected[vec]
        for res in (base_res, sc_res, poly_res)
        for vec in dyn_vectors
    )
    poly_ok = poly_text == base_text

    record = {
        "baseline_chars": len(base_text),
        "sizechange_chars": len(sc_text),
        "baseline_run_us": _time_runs(base_res, dyn_vectors),
        "sizechange_run_us": _time_runs(sc_res, dyn_vectors),
        "genext_mono_chars": base_genext,
        "genext_poly_chars": poly_genext,
    }
    return record, values_ok, poly_ok


def main():
    cpus = _cpus()
    scenarios = {}
    values_ok = True
    poly_ok = True

    # -- E5: static machine memory, dynamic address --------------------------
    source, goal, static, dyn = memory_lookup_program(MEMORY_CELLS, seed=SEED)
    vectors = tuple((a,) for a in (0, 1, MEMORY_CELLS - 1, MEMORY_CELLS + 3))
    record, v_ok, p_ok = _scenario(source, goal, static, dyn, vectors)
    record["family"] = "e5"
    scenarios["memory-lookup"] = record
    values_ok &= v_ok
    poly_ok &= p_ok

    # -- E6: static table library, dynamic index -----------------------------
    source, goal, static, dyn = library_lookup_program(
        LIB_TABLES, LIB_CELLS, seed=SEED
    )
    vectors = tuple((i,) for i in (0, LIB_CELLS // 2, LIB_CELLS - 1))
    record, v_ok, p_ok = _scenario(source, goal, static, dyn, vectors)
    record["family"] = "e6"
    scenarios["library-lookup"] = record
    values_ok &= v_ok
    poly_ok &= p_ok

    # -- E4: two binding-time patterns per library loop ----------------------
    source, goal, static, dyn = dual_pattern_program(POLY_FUNCS, seed=SEED)
    vectors = tuple((d,) for d in (0, 2, 9))
    record, v_ok, p_ok = _scenario(source, goal, static, dyn, vectors)
    record["family"] = "e4"
    analysis = analyse_program(load_program(source), division="poly")
    record["bt_versions"] = sum(
        len(vs) for m in analysis.modules for vs in m.versions.values()
    )
    scenarios["poly-dispatch"] = record
    values_ok &= v_ok
    poly_ok &= p_ok

    doc = {
        "schema": BENCH_POLYVARIANCE_SCHEMA,
        "cpus": cpus,
        "tiny": TINY,
        "workload": {
            "memory_cells": MEMORY_CELLS,
            "library_tables": LIB_TABLES,
            "library_cells": LIB_CELLS,
            "poly_funcs": POLY_FUNCS,
            "reps": REPS,
            "seed": SEED,
        },
        "scenarios": scenarios,
        "values_identical": values_ok,
        "poly_identical": poly_ok,
    }
    problems = validate_bench_polyvariance(doc)
    assert not problems, problems
    with open(JSON_PATH, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    print(
        "== polyvariance & size-change (%d cpus%s) =="
        % (cpus, ", tiny" if TINY else "")
    )
    for name in sorted(scenarios):
        s = scenarios[name]
        shrink = 1 - s["sizechange_chars"] / s["baseline_chars"]
        print(
            "%-16s %-4s residual %5d -> %5d chars (%+5.1f%%)  "
            "run %7.1f -> %7.1f us"
            % (
                name,
                s["family"],
                s["baseline_chars"],
                s["sizechange_chars"],
                -shrink * 100,
                s["baseline_run_us"],
                s["sizechange_run_us"],
            )
        )
    print(
        "values identical: %s; poly byte-identical: %s" % (values_ok, poly_ok)
    )
    print("wrote", JSON_PATH)

    assert values_ok, "a strategy residual diverged from the interpreter"
    assert poly_ok, "polyvariant division changed the residual program"
    return 0


if __name__ == "__main__":
    sys.exit(main())
