"""Extension bench: the residual-program optimiser.

Unfolding duplicates dynamic code (no let-insertion in the source
language — same as the paper's prototype).  The post-pass binds repeated
subexpressions with ``let`` and folds constants; this bench measures the
evaluation-step saving on the FIR workload, whose unrolled dot product
recomputes its window.
"""

import pytest

import repro
from repro.interp import Interpreter
from repro.modsys.program import link_program
from repro.residual.optimise import optimise_program
from repro.stdlib import stdlib_source

SOURCE = stdlib_source(("Lists",)) + """
module Fir where
import Lists

dot ks xs = if null ks then 0 else head ks * head xs + dot (tail ks) (tail xs)
fir ks xs = if length xs < length ks then nil else dot ks (take (length ks) xs) : fir ks (tail xs)
"""

KERNEL = (1, 2, 3, 2, 1)
SIGNAL = tuple(range(1, 30))


@pytest.fixture(scope="module")
def residuals():
    gp = repro.compile_genexts(SOURCE)
    result = repro.specialise(gp, "fir", {"ks": KERNEL})
    optimised = link_program(optimise_program(result.program))
    return result, optimised


def _steps(linked, entry):
    interp = Interpreter(linked, fuel=10_000_000)
    out = interp.call(entry, [SIGNAL])
    return interp.steps, out


def test_optimiser_saves_evaluation_steps(benchmark, table, residuals):
    result, optimised = residuals

    def measure():
        raw_steps, raw_out = _steps(result.linked, result.entry)
        opt_steps, opt_out = _steps(optimised, result.entry)
        assert raw_out == opt_out
        return raw_steps, opt_steps

    raw_steps, opt_steps = benchmark.pedantic(measure, rounds=1, iterations=1)
    table(
        "Optimiser — FIR kernel %s over a %d-sample signal" % (KERNEL, len(SIGNAL)),
        ["residual", "evaluation steps"],
        [
            ["unoptimised", raw_steps],
            ["CSE + folding", opt_steps],
            ["saving", "%.1f%%" % (100 * (1 - opt_steps / raw_steps))],
        ],
    )
    assert opt_steps < raw_steps


def test_run_unoptimised(benchmark, residuals):
    result, _ = residuals
    benchmark(lambda: _steps(result.linked, result.entry))


def test_run_optimised(benchmark, residuals):
    result, optimised = residuals
    benchmark(lambda: _steps(optimised, result.entry))


def test_optimise_cost(benchmark, residuals):
    result, _ = residuals
    benchmark(optimise_program, result.program)
