"""Extension bench: functors amortise analysis across instantiations.

A parameterised module is analysed and cogen'd once against its
parameter signature; each instantiation is an exec + subsumption check.
We compare against the alternative a system without functors must use:
textually duplicating the module per comparator and re-analysing every
copy."""

import time

import pytest

import repro
from repro.bt.analysis import analyse_program
from repro.functor import make_functor
from repro.genext.cogen import cogen_program
from repro.genext.link import GenextProgram, load_genext
from repro.lang.parser import parse_program
from repro.modsys.program import load_program

N_INSTANCES = 12

ORD = "module Ord where\n\n" + "\n".join(
    "le%d a b = a * %d <= b * %d" % (i, i + 1, i + 2) for i in range(N_INSTANCES)
)

SORT = """\
module Sort(le 2) where

insert x xs = if null xs then x : nil else if le x (head xs) then x : xs else head xs : insert x (tail xs)
isort xs = if null xs then nil else insert (head xs) (isort (tail xs))
"""


def _copies_program():
    """The no-functor alternative: N textual copies of Sort."""
    chunks = [ORD, ""]
    for i in range(N_INSTANCES):
        chunks.append("module Sort%d where" % i)
        chunks.append("import Ord")
        chunks.append("")
        chunks.append(
            "insert%d x xs = if null xs then x : nil else if le%d x (head xs) "
            "then x : xs else head xs : insert%d x (tail xs)" % (i, i, i)
        )
        chunks.append(
            "isort%d xs = if null xs then nil else insert%d (head xs) "
            "(isort%d (tail xs))" % (i, i, i)
        )
        chunks.append("")
    return "\n".join(chunks)


def test_functor_amortisation(benchmark, table):
    def measure():
        ord_analysis = analyse_program(load_program(ORD))
        base = [load_genext(m) for m in cogen_program(ord_analysis)]

        t0 = time.perf_counter()
        template = make_functor(parse_program(SORT).modules[0])
        t_prepare = time.perf_counter() - t0

        t0 = time.perf_counter()
        loaded = [
            template.instantiate(
                "I%d" % i, {"le": "le%d" % i}, ord_analysis.schemes
            )[0]
            for i in range(N_INSTANCES)
        ]
        t_instantiate = time.perf_counter() - t0
        gp = GenextProgram(base + loaded)
        result = repro.specialise(gp, "i3_isort", {})
        assert result.run((9, 2, 5)) is not None

        t0 = time.perf_counter()
        repro.compile_genexts(_copies_program())
        t_copies = time.perf_counter() - t0
        return t_prepare, t_instantiate, t_copies

    t_prepare, t_instantiate, t_copies = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table(
        "Functor amortisation (%d instantiations of Sort)" % N_INSTANCES,
        ["approach", "time"],
        [
            ["functor: analyse+cogen once", "%.2f ms" % (t_prepare * 1e3)],
            [
                "functor: %d instantiations" % N_INSTANCES,
                "%.2f ms (%.2f ms each)"
                % (t_instantiate * 1e3, t_instantiate * 1e3 / N_INSTANCES),
            ],
            [
                "no functors: %d textual copies, full pipeline" % N_INSTANCES,
                "%.2f ms" % (t_copies * 1e3),
            ],
        ],
    )
    assert t_prepare + t_instantiate < t_copies


def test_instantiation_speed(benchmark):
    ord_analysis = analyse_program(load_program(ORD))
    template = make_functor(parse_program(SORT).modules[0])
    counter = [0]

    def instantiate():
        counter[0] += 1
        return template.instantiate(
            "B%d" % counter[0], {"le": "le0"}, ord_analysis.schemes
        )

    benchmark(instantiate)
