"""E6 (Sec. 4): per-source-definition cost.

"A specialiser must read, parse, and analyse every definition in a
program before it can begin specialisation.  Even functions which are
not used incur a cost [...] In contrast, when a generating extension is
used instead, the cost-per-source-definition is very low [...] only
those functions which are actually specialised incur any significant
cost."

We hold the client fixed (it uses k=3 library functions) and grow the
library from 10 to 160 definitions.  The shape to reproduce: the mix
front end grows linearly with the library size while the genext
specialisation time stays flat.
"""

import time

import pytest

import repro
from repro.bench.generators import library_program
from repro.bench.metrics import linear_fit
from repro.genext.engine import specialise as engine_specialise
from repro.specialiser import MixProgram

LIBRARY_SIZES = [10, 20, 40, 80, 160]
USED = 3


def _best_of(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _sweep():
    rows = []
    genext_times = []
    mix_times = []
    for n in LIBRARY_SIZES:
        source = library_program(n, USED, seed=n)
        gp = repro.compile_genexts(source)
        t_genext = _best_of(lambda: engine_specialise(gp, "client", {"m": 3}))
        t_mix_full = _best_of(
            lambda: engine_specialise(
                MixProgram.from_source(source), "client", {"m": 3}
            )
        )
        rows.append(
            [
                n,
                USED,
                "%.3f ms" % (t_genext * 1e3),
                "%.2f ms" % (t_mix_full * 1e3),
                "%.1fx" % (t_mix_full / t_genext),
            ]
        )
        genext_times.append(t_genext)
        mix_times.append(t_mix_full)
    return rows, genext_times, mix_times


def test_library_scaling(benchmark, table):
    rows, genext_times, mix_times = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    table(
        "E6 — cost of unused library definitions (client uses %d)" % USED,
        ["library defs", "used", "genext", "mix (full)", "mix/genext"],
        rows,
    )
    # mix's cost grows with the library; the genext's barely moves.
    mix_growth = mix_times[-1] / mix_times[0]
    genext_growth = genext_times[-1] / genext_times[0]
    assert mix_growth > 4.0, "mix front end should track library size"
    assert genext_growth < mix_growth / 2, (
        "genext specialisation must be largely insensitive to unused "
        "definitions (grew %.1fx vs mix %.1fx)" % (genext_growth, mix_growth)
    )


def test_genext_on_large_library(benchmark):
    gp = repro.compile_genexts(library_program(160, USED, seed=160))
    benchmark(engine_specialise, gp, "client", {"m": 3})


def test_mix_on_large_library(benchmark):
    source = library_program(160, USED, seed=160)

    def full():
        return engine_specialise(
            MixProgram.from_source(source), "client", {"m": 3}
        )

    benchmark(full)
