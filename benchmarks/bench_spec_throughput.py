"""Specialisation-layer throughput: residual cache, RTCG LRU, batch driver.

A first-Futamura workload — specialising the register-machine
interpreter (:data:`repro.bench.generators.MACHINE_INTERPRETER`) with
respect to machine programs — measured through the three layers this
repo stacks on top of a single ``specialise`` call:

* **persistent residual cache** (``SpecOptions(cache_dir=...)``): a
  cold run against an empty cache vs a warm run answered from disk;
* **RTCG callable LRU** (``repro.backend.generate``): a cold
  specialise+compile vs a memoised hit;
* **batch driver** (``specialise_many``): an 8-request batch at
  ``jobs=1`` against a cold cache, ``jobs=4`` against a cold cache
  (raw pool parallelism), and ``jobs=4`` against the warm shared cache
  (cross-process dedup — the serve-many-users steady state).  The
  parallel runs hold a resident, pre-warmed
  :class:`~repro.pipeline.pool.WorkerPool` — the daemon operating point
  (``repro.serve``), where the fork/pickle setup cost is paid once, not
  per batch.

Every variant's residual programs are pretty-printed and compared for
byte identity; the emitted ``BENCH_spec_throughput.json``
(``repro.bench.spec_throughput/v1``, schema-checked in CI by
``python -m repro.obs.schema``) refuses to record anything else.

Run directly — no pytest machinery:

    PYTHONPATH=src python benchmarks/bench_spec_throughput.py

``MSPEC_BENCH_TINY=1`` shrinks the workload for CI smoke runs; speedup
assertions that only hold at full size (or need real cores) are
reported but not enforced there.
"""

import json
import os
import sys
import tempfile
import time

import repro
from repro.api import SpecOptions
from repro.backend import rtcg
from repro.backend.rtcg import generate
from repro.bench.generators import (
    machine_interpreter_source,
    random_machine_program,
)
from repro.genext.batch import seed_worker_program, specialise_many
from repro.obs import Obs
from repro.pipeline.pool import WorkerPool
from repro.obs.schema import (
    BENCH_SPEC_THROUGHPUT_SCHEMA,
    validate_bench_spec_throughput,
)

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_spec_throughput.json"
)

TINY = os.environ.get("MSPEC_BENCH_TINY") == "1"
PROGRAM_LENGTH = 12 if TINY else 48
N_REQUESTS = 4 if TINY else 8
N_SEEDS = 3 if TINY else 6  # distinct machine programs in the batch

MIN_WARM_SPEEDUP = 10.0
MIN_LRU_SPEEDUP = 20.0
MIN_BATCH_WARM_SPEEDUP = 2.0
MIN_BATCH_PARALLEL_SPEEDUP = 2.0  # cold jobs=4 vs jobs=1; needs >= 4 cores


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best(fn, rounds):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _goal_requests():
    seeds = list(range(1, N_SEEDS + 1))
    progs = [random_machine_program(PROGRAM_LENGTH, seed=s) for s in seeds]
    # Duplicates on purpose: repeated requests are what the dedup and
    # the shared cache exist for.
    requests = [("run", {"prog": progs[i % N_SEEDS]}) for i in range(N_REQUESTS)]
    return progs, requests


def bench_residual_cache(gp, prog, tmp):
    """Cold vs warm ``specialise`` through the persistent cache."""
    fingerprints = []

    def cold():
        with tempfile.TemporaryDirectory(dir=tmp) as cache:
            result = repro.specialise(
                gp, "run", {"prog": prog}, SpecOptions(cache_dir=cache)
            )
            fingerprints.append(repro.pretty_program(result.program))

    cold_s = _best(cold, 3)

    warm_cache = os.path.join(tmp, "warm-cache")
    obs = Obs()
    repro.specialise(
        gp, "run", {"prog": prog}, SpecOptions(cache_dir=warm_cache)
    )

    def warm():
        result = repro.specialise(
            gp,
            "run",
            {"prog": prog},
            SpecOptions(cache_dir=warm_cache),
            obs=obs,
        )
        fingerprints.append(repro.pretty_program(result.program))

    warm_s = _best(warm, 5)
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("speccache.hits", 0) >= 5, counters
    identical = len(set(fingerprints)) == 1
    return cold_s, warm_s, identical


def bench_rtcg_lru(gp, prog):
    """Cold ``generate`` (specialise + compile) vs an LRU hit."""
    texts = []

    def cold():
        rtcg.clear_lru()
        fn = generate(gp, "run", {"prog": prog})
        texts.append(repro.pretty_program(fn.result.program))

    cold_s = _best(cold, 3)

    rtcg.clear_lru()
    obs = Obs()
    first = generate(gp, "run", {"prog": prog}, obs=obs)
    rounds = 200

    def warm():
        for _ in range(rounds):
            fn = generate(gp, "run", {"prog": prog}, obs=obs)
        assert fn is first
        texts.append(repro.pretty_program(fn.result.program))

    warm_s = _best(warm, 3) / rounds
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("rtcg.lru_hits", 0) >= rounds, counters
    identical = len(set(texts)) == 1
    return cold_s, warm_s, identical


def bench_batch(gp, requests, tmp):
    """The 8-request batch at the three interesting operating points.

    The ``jobs=4`` runs borrow one resident pool, warmed once before
    any clock starts — measuring the steady state a specialisation
    service actually runs in, not the fork+pickle setup cost an
    ephemeral pool would re-pay per batch."""
    outputs = []

    def run(jobs, cache, pool=None):
        batch = specialise_many(
            gp, requests, SpecOptions(cache_dir=cache), jobs=jobs, pool=pool
        )
        assert batch.ok, batch.render_failures()
        outputs.append(
            tuple(repro.pretty_program(r.program) for r in batch.results)
        )
        return batch

    def cold_jobs(jobs, rounds=2, pool=None):
        times = []
        for rnd in range(rounds):
            cache = os.path.join(tmp, "batch-j%d-r%d" % (jobs, rnd))
            started = time.perf_counter()
            run(jobs, cache, pool=pool)
            times.append(time.perf_counter() - started)
        return min(times)

    cold_j1 = cold_jobs(1)

    seed_worker_program(gp)  # fork-inherit the linked program
    pool = WorkerPool(4)
    pool.warm()
    try:
        cold_j4 = cold_jobs(4, pool=pool)

        shared = os.path.join(tmp, "batch-shared")
        run(1, shared)  # populate the shared cache

        def warm():
            run(4, shared, pool=pool)

        warm_j4 = _best(warm, 3)
    finally:
        pool.shutdown()
    identical = len(set(outputs)) == 1
    return cold_j1, cold_j4, warm_j4, identical


def bench_runtime_micro(gp, prog):
    """A/B micro-measurements for the runtime hot-path changes.

    ``bt_lub`` now returns the shared S/D singletons on an
    allocation-free path; the reference implementation below is the old
    always-allocating behaviour (a memoising wrapper was also tried and
    rejected — the dict probe lost to the fast path).  The whole-run
    number (one cold specialisation of the workload, no caches) is the
    end-to-end effect of ``__slots__``, the singleton lubs, and the
    cheaper ``_split`` memo keys together."""
    from repro.bt.bt import BT, bt_lub
    from repro.genext.runtime import D, S

    def bt_lub_reference(*bts):  # pre-optimisation behaviour
        if any(b.dyn for b in bts):
            return D
        params = frozenset()
        for b in bts:
            params = params | b.params
        return BT(params, False)

    args = [(S, D), (S, S), (D, D), (D, S)] * 2500

    def optimised():
        for a in args:
            bt_lub(*a)

    def reference():
        for a in args:
            bt_lub_reference(*a)

    lub_opt_s = _best(optimised, 5)
    lub_ref_s = _best(reference, 5)

    def cold_run():
        repro.specialise(gp, "run", {"prog": prog})

    spec_s = _best(cold_run, 3)
    return {
        "micro_lub_optimised_s": lub_opt_s,
        "micro_lub_reference_s": lub_ref_s,
        "micro_lub_speedup": lub_ref_s / lub_opt_s,
        "micro_cold_specialise_s": spec_s,
    }


def main():
    cpus = _cpus()
    gp = repro.compile_genexts(machine_interpreter_source())
    progs, requests = _goal_requests()

    with tempfile.TemporaryDirectory() as tmp:
        cache_cold, cache_warm, cache_ok = bench_residual_cache(
            gp, progs[0], tmp
        )
        lru_cold, lru_warm, lru_ok = bench_rtcg_lru(gp, progs[0])
        batch_j1, batch_j4_cold, batch_j4_warm, batch_ok = bench_batch(
            gp, requests, tmp
        )
    micro = bench_runtime_micro(gp, progs[0])

    identical = cache_ok and lru_ok and batch_ok
    results = {
        "cache_cold_s": cache_cold,
        "cache_warm_s": cache_warm,
        "cache_warm_speedup": cache_cold / cache_warm,
        "lru_cold_s": lru_cold,
        "lru_hit_s": lru_warm,
        "lru_speedup": lru_cold / lru_warm,
        "batch_jobs1_cold_s": batch_j1,
        "batch_jobs4_cold_s": batch_j4_cold,
        "batch_jobs4_warm_s": batch_j4_warm,
        "batch_parallel_speedup": batch_j1 / batch_j4_cold,
        "batch_warm_speedup": batch_j1 / batch_j4_warm,
    }
    results.update(micro)

    doc = {
        "schema": BENCH_SPEC_THROUGHPUT_SCHEMA,
        "cpus": cpus,
        "tiny": TINY,
        "workload": {
            "goal": "run",
            "machine_program_length": PROGRAM_LENGTH,
            "batch_requests": N_REQUESTS,
            "batch_unique": N_SEEDS,
        },
        "results": results,
        "identical": identical,
    }
    problems = validate_bench_spec_throughput(doc)
    assert not problems, problems
    with open(JSON_PATH, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    rows = [
        ("specialise, cold", cache_cold, 1.0),
        ("specialise, warm cache", cache_warm, results["cache_warm_speedup"]),
        ("generate, cold", lru_cold, 1.0),
        ("generate, LRU hit", lru_warm, results["lru_speedup"]),
        ("batch x%d, jobs=1 cold" % N_REQUESTS, batch_j1, 1.0),
        (
            "batch x%d, jobs=4 cold" % N_REQUESTS,
            batch_j4_cold,
            results["batch_parallel_speedup"],
        ),
        (
            "batch x%d, jobs=4 warm" % N_REQUESTS,
            batch_j4_warm,
            results["batch_warm_speedup"],
        ),
    ]
    print(
        "== specialisation throughput (program length %d, %d cpus%s) =="
        % (PROGRAM_LENGTH, cpus, ", tiny" if TINY else "")
    )
    for label, seconds, speedup in rows:
        print("%-28s %10.3f ms  %8.2fx" % (label, seconds * 1e3, speedup))
    print(
        "lub singleton fast path: %.2fx; byte-identical: %s"
        % (results["micro_lub_speedup"], identical)
    )
    print("wrote", JSON_PATH)

    assert identical, "residual programs differ across cache states/jobs"
    if not TINY:
        assert results["cache_warm_speedup"] >= MIN_WARM_SPEEDUP, (
            "warm cache only %.2fx faster" % results["cache_warm_speedup"]
        )
        assert results["lru_speedup"] >= MIN_LRU_SPEEDUP, (
            "LRU hit only %.2fx faster" % results["lru_speedup"]
        )
        assert results["batch_warm_speedup"] >= MIN_BATCH_WARM_SPEEDUP, (
            "warm shared-cache batch only %.2fx faster"
            % results["batch_warm_speedup"]
        )
        if cpus >= 4:
            assert (
                results["batch_parallel_speedup"]
                >= MIN_BATCH_PARALLEL_SPEEDUP
            ), (
                "--jobs 4 only %.2fx faster than --jobs 1 on %d cpus"
                % (results["batch_parallel_speedup"], cpus)
            )
        else:
            print(
                "NOTE: %d usable cpu(s); cold parallel speedup %.2fx "
                "recorded, assertion (>= %.1fx) requires >= 4 cores"
                % (cpus, results["batch_parallel_speedup"], 2.0)
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
