"""Extension bench: residual programs lowered to Python (Sec. 8 outlook).

Compares three ways of running the same computation:

* the general program, interpreted;
* the specialised residual program, interpreted;
* the specialised residual program compiled to Python (the
  run-time-code-generation path).

The shape: specialisation wins over generality, and native lowering wins
over interpreting the residual — the full chain the paper sketches for
future work.
"""

import pytest

import repro
from repro.backend import compile_program, generate
from repro.bench.generators import machine_interpreter_source, random_machine_program
from repro.interp import Interpreter
from repro.modsys.program import load_program


@pytest.fixture(scope="module")
def setup():
    source = machine_interpreter_source()
    gp = repro.compile_genexts(source)
    linked = load_program(source)
    prog = random_machine_program(25, seed=4)
    result = repro.specialise(gp, "run", {"prog": prog})
    fn = generate(gp, "run", {"prog": prog})
    # All three agree.
    expected = Interpreter(linked, fuel=10_000_000).call("run", [prog, 5])
    assert result.run(5) == expected
    assert fn(5) == expected
    return linked, prog, result, fn


def test_general_interpreted(benchmark, setup):
    linked, prog, _, _ = setup
    benchmark(
        lambda: Interpreter(linked, fuel=10_000_000).call("run", [prog, 5])
    )


def test_residual_interpreted(benchmark, setup):
    _, _, result, _ = setup
    benchmark(lambda: Interpreter(result.linked).call(result.entry, [5]))


def test_residual_compiled_to_python(benchmark, setup):
    _, _, _, fn = setup
    benchmark(fn, 5)


def test_code_generation_cost(benchmark, setup):
    """The one-off cost of lowering a residual program to Python."""
    _, _, result, _ = setup
    benchmark(compile_program, result.program)


def test_chain_summary(benchmark, table, setup):
    import time

    linked, prog, result, fn = setup

    def measure():
        def best(f, n=20):
            out = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                f()
                out = min(out, time.perf_counter() - t0)
            return out

        t_general = best(
            lambda: Interpreter(linked, fuel=10_000_000).call("run", [prog, 5])
        )
        t_residual = best(
            lambda: Interpreter(result.linked).call(result.entry, [5])
        )
        t_python = best(lambda: fn(5))
        return t_general, t_residual, t_python

    t_general, t_residual, t_python = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table(
        "Backend — general vs residual vs compiled-to-Python",
        ["form", "time", "speedup over general"],
        [
            ["general, interpreted", "%.3f ms" % (t_general * 1e3), "1.0x"],
            [
                "residual, interpreted",
                "%.3f ms" % (t_residual * 1e3),
                "%.1fx" % (t_general / t_residual),
            ],
            [
                "residual, compiled to Python",
                "%.4f ms" % (t_python * 1e3),
                "%.0fx" % (t_general / t_python),
            ],
        ],
    )
    assert t_residual < t_general
    assert t_python < t_residual
