"""Shared benchmark helpers: table printing in the style of the
EXPERIMENTS.md records."""

import sys

import pytest


def print_table(title, headers, rows):
    """Print one experiment table (visible with ``pytest -s`` and in the
    captured section of the benchmark run)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print("== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    sys.stdout.flush()


@pytest.fixture(scope="session")
def table():
    return print_table
