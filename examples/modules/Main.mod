-- main y = ((y^3)^3)^3 = y^9 once power 3 is specialised away.
module Main where
import Power
import Twice

main y = twice (\z -> power 3 z) y * power 3 y
