module Twice where

twice f x = f @ (f @ x)
