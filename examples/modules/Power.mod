-- The paper's running example: a power function whose exponent is
-- static at specialisation time.
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
