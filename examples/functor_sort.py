#!/usr/bin/env python3
"""Parameterised modules — the paper's Further Work, working.

A ``Sort`` functor abstracts insertion sort over its ordering.  Exactly
as Sec. 8 anticipates, the *user supplies a binding-time signature* for
the parameter; the functor is then analysed and cogen'd **once**, and
each instantiation merely re-executes the generated module with the
parameter wired to the actual comparator — no re-analysis, no re-cogen.
Instantiation is checked by *scheme subsumption*: the actual comparator's
principal binding-time scheme must be at least as general as the
signature the functor assumed.

Run:  python examples/functor_sort.py
"""

import repro
from repro.bt.analysis import analyse_program
from repro.functor import FunctorError, default_param_scheme, make_functor
from repro.genext.cogen import cogen_program
from repro.genext.link import GenextProgram, load_genext
from repro.lang.parser import parse_program
from repro.modsys.program import load_program

ORD = """\
module Ord where

leqAsc a b = a <= b
leqDesc a b = b <= a
keyLeq p q = fst p <= fst q
"""

SORT = """\
module Sort(le 2) where

insert x xs = if null xs then x : nil else if le x (head xs) then x : xs else head xs : insert x (tail xs)
isort xs = if null xs then nil else insert (head xs) (isort (tail xs))
"""


def main():
    ord_analysis = analyse_program(load_program(ORD))
    sort_module = parse_program(SORT).modules[0]

    print("== Analyse + cogen the functor ONCE (default signature) ==")
    template = make_functor(sort_module)
    print("assumed le :", template.param_schemes["le"])
    print("isort      :", template.schemes["isort"])
    print()

    print("== Instantiate twice, no re-analysis ==")
    asc, _ = template.instantiate("Asc", {"le": "leqAsc"}, ord_analysis.schemes)
    desc, _ = template.instantiate("Desc", {"le": "leqDesc"}, ord_analysis.schemes)
    base = [load_genext(m) for m in cogen_program(ord_analysis)]
    gp = GenextProgram(base + [asc, desc])

    result = repro.specialise(gp, "asc_isort", {})
    print(repro.pretty_program(result.program))
    print("asc_isort([3,1,2])  =", result.run((3, 1, 2)))
    print(
        "desc_isort([3,1,2]) =",
        repro.specialise(gp, "desc_isort", {}).run((3, 1, 2)),
    )
    print()

    print("== Subsumption rejects an unsound actual ==")
    try:
        template.instantiate("Keyed", {"le": "keyLeq"}, ord_analysis.schemes)
    except FunctorError as e:
        print("rejected, as it must be:")
        print(" ", str(e).splitlines()[0])
    print()

    print("== A user-supplied signature admits the keyed comparator ==")
    keyed_template = make_functor(
        sort_module, param_schemes={"le": ord_analysis.schemes["keyLeq"]}
    )
    keyed, _ = keyed_template.instantiate(
        "Keyed", {"le": "keyLeq"}, ord_analysis.schemes
    )
    gp2 = GenextProgram(
        [load_genext(m) for m in cogen_program(ord_analysis)] + [keyed]
    )
    result = repro.specialise(gp2, "keyed_isort", {})
    pairs = (("pair", 3, 30), ("pair", 1, 10), ("pair", 2, 20))
    print("keyed_isort(...) =", result.run(pairs))


if __name__ == "__main__":
    main()
