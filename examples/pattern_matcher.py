#!/usr/bin/env python3
"""Compiling pattern matchers by specialisation.

The classic partial-evaluation demo (after Consel & Danvy): a general
glob-style matcher, specialised to a *static pattern*, becomes a
dedicated matching automaton — one residual function per pattern suffix,
with all pattern inspection gone.

Patterns and subject strings are lists of naturals (character codes);
two metacharacters: ``300`` is ``?`` (match any one) and ``301`` is
``*`` (match any run, with backtracking).

Run:  python examples/pattern_matcher.py
"""

import repro
from repro.backend import generate

SOURCE = """\
module Glob where

match p s =
  if null p then null s
  else if head p == 301 then match (tail p) s || (if null s then false else match p (tail s))
  else if null s then false
  else if head p == 300 then match (tail p) (tail s)
  else (head p == head s) && match (tail p) (tail s)
"""

QM, STAR = 300, 301


def pat(*items):
    return tuple(items)


def encode(text):
    return tuple(
        STAR if c == "*" else QM if c == "?" else ord(c) for c in text
    )


def main():
    gp = repro.compile_genexts(SOURCE)

    pattern = encode("a*b?c")
    print("== Compiling the pattern 'a*b?c' ==")
    result = repro.specialise(gp, "match", {"p": pattern})
    print(repro.pretty_program(result.program))
    print(
        "residual matcher: %d specialised functions (one per pattern suffix)"
        % result.stats["specialisations"]
    )
    for text, expected in [
        ("abxc", True),
        ("azzzbqc", True),
        ("abc", False),  # '?' needs one character between b and c
        ("a", False),
        ("aXbYc", True),
    ]:
        got = result.run(tuple(ord(c) for c in text))
        status = "OK" if got is expected else "BUG"
        print("  match 'a*b?c' %-8r -> %-5s %s" % (text, got, status))
    print()

    print("== As a Python predicate via run-time code generation ==")
    is_header = generate(gp, "match", {"p": encode("#*")})
    for line in ("# hello", "plain text"):
        print(
            "  %-12r starts with '#': %s"
            % (line, is_header(tuple(ord(c) for c in line)))
        )


if __name__ == "__main__":
    main()
