#!/usr/bin/env python3
"""Module-sensitivity meets the Futamura projection.

Sec. 8 of the paper imagines interpreters and their input programs both
"expressed in terms of modules".  Here the register-machine interpreter
itself is split across feature modules:

* ``Fetch``   — program indexing (always unfolded away),
* ``Alu``     — saturating arithmetic (residualised: its overflow test
  is dynamic),
* ``Control`` — the conditional-jump test,
* ``Machine`` — the dispatch loop.

Compiling (= specialising the interpreter to) a machine program produces
a residual program whose module structure is derived from the
*interpreter's*: specialised ALU operations land in a residual ``Alu``
module, the dispatch chain in ``Machine`` — and a program that uses no
arithmetic leaves no ``Alu`` module at all, just as a jump-free program
leaves no trace of ``Control``'s test.

Run:  python examples/modular_interpreter.py
"""

import repro
from repro.lang.prims import make_pair

SOURCE = """\
module Fetch where

index xs n = if n == 0 then head xs else index (tail xs) (n - 1)
size xs = if null xs then 0 else 1 + size (tail xs)

module Alu where

alu op acc arg = if op == 0 then sat (acc + arg) else sat (acc * arg)
sat v = if v <= 255 then v else 255

module Control where

taken acc = acc == 0

module Machine where
import Fetch
import Alu
import Control

step prog pc acc =
  if pc == size prog then acc
  else if fst (index prog pc) == 2
       then (if taken acc then step prog (snd (index prog pc)) acc else step prog (pc + 1) acc)
       else if fst (index prog pc) == 3 then step prog (pc + 1) (snd (index prog pc))
       else step prog (pc + 1) (alu (fst (index prog pc)) acc (snd (index prog pc)))

run prog acc = step prog 0 acc
"""


def compile_machine(gp, name, prog):
    result = repro.specialise(gp, "run", {"prog": prog})
    print("-- %s --" % name)
    print(repro.pretty_program(result.program))
    print(
        "residual modules: %s"
        % ", ".join(sorted(m.name for m in result.program.modules))
    )
    print()
    return result


def main():
    gp = repro.compile_genexts(SOURCE)

    print("== Arithmetic + a jump: residual Alu module appears ==")
    with_arith = (
        make_pair(1, 2),   # acc := sat(acc * 2)
        make_pair(2, 3),   # if acc == 0 jump to halt
        make_pair(0, 100), # acc := sat(acc + 100)
    )
    r1 = compile_machine(gp, "acc*=2; jz 3; acc+=100", with_arith)
    assert any(m.name == "Alu" for m in r1.program.modules)
    print("run(0) =", r1.run(0), "  run(5) =", r1.run(5), "  run(200) =", r1.run(200))
    print()

    print("== Loads and jumps only: no Alu module is generated ==")
    no_arith = (make_pair(3, 7), make_pair(2, 1))
    r2 = compile_machine(gp, "acc:=7; jz 1 (never)", no_arith)
    assert all(m.name != "Alu" for m in r2.program.modules)
    assert "sat" not in repro.pretty_program(r2.program)
    print("run(99) =", r2.run(99))


if __name__ == "__main__":
    main()
