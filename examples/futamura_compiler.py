#!/usr/bin/env python3
"""The first Futamura projection: specialising an interpreter compiles.

A register-machine interpreter is written in the object language;
specialising its ``run`` function with respect to a *static* machine
program and a *dynamic* accumulator removes all interpretive overhead:
the residual program has one function per reachable program point, with
instruction dispatch, program indexing, and jump-target arithmetic all
performed at specialisation time.

Machine instructions are ``(op, arg)`` pairs:

====  =======================
op    meaning
====  =======================
0     acc := acc + arg
1     acc := acc * arg
2     if acc == 0 jump to arg
3     acc := arg
====  =======================

Run:  python examples/futamura_compiler.py
"""

import time

import repro
from repro.bench.generators import machine_interpreter_source, random_machine_program
from repro.interp import run_program
from repro.lang.prims import make_pair


def main():
    source = machine_interpreter_source()
    print("== The interpreter ==")
    print(source)

    gp = repro.compile_genexts(source)
    linked = repro.load_program(source)

    # A concrete machine program:
    #   0: acc *= 2;  1: acc += 10;  2: if acc == 0 jump 4;  3: acc *= 3
    program = (
        make_pair(1, 2),
        make_pair(0, 10),
        make_pair(2, 4),
        make_pair(1, 3),
    )
    print("== Compiling (specialising the interpreter) ==")
    result = repro.specialise(gp, "run", {"prog": program})
    print(repro.pretty_program(result.program))

    for acc in (0, 1, 5, 13):
        interpreted = run_program(linked, "run", [program, acc])
        compiled = result.run(acc)
        print(
            "acc=%-3d interpreted=%-6d compiled=%-6d %s"
            % (acc, interpreted, compiled, "OK" if interpreted == compiled else "BUG")
        )
    print()

    # Compiled code skips the interpretive overhead: compare interpreter
    # steps against residual-program steps.
    from repro.interp import Interpreter

    i1 = Interpreter(linked)
    i1.call("run", [program, 5])
    i2 = Interpreter(result.linked)
    i2.call(result.entry, [5])
    print(
        "interpreter steps: %d   compiled steps: %d   (%.1fx fewer)"
        % (i1.steps, i2.steps, i1.steps / i2.steps)
    )
    print()

    print("== A larger random program ==")
    big = random_machine_program(40, seed=7)
    result = repro.specialise(gp, "run", {"prog": big})
    ok = all(
        run_program(linked, "run", [big, acc], fuel=10_000_000) == result.run(acc)
        for acc in range(6)
    )
    print(
        "40-instruction program -> %d residual functions, outputs agree: %s"
        % (result.stats["specialisations"], ok)
    )


if __name__ == "__main__":
    main()
