#!/usr/bin/env python3
"""Compiling an embedded RPN expression language by specialisation.

A stack machine for arithmetic expressions in reverse Polish notation is
written in the object language.  Instructions are ``(op, arg)`` pairs:

====  =====================================
op    meaning
====  =====================================
0     push the literal ``arg``
1     push variable ``arg`` (environment index)
2     pop two, push their sum
3     pop two, push their product
====  =====================================

Specialising ``run`` with respect to a *static* instruction list and a
*dynamic* environment is a compelling partial-evaluation showcase:

* the program list and the instruction dispatch are static — every
  conditional in ``exec`` tests static data, so ``exec`` *unfolds
  completely*;
* the evaluation stack is **partially static**: its spine (the stack
  shape at each program point) is static while its contents are dynamic
  code fragments;
* the residual program is a single expression — the compiled form of
  the RPN program — with no stack, no dispatch, no interpretation.

The residual is finally lowered to Python by the run-time-code-generation
backend (the paper's Sec. 8 outlook).

Run:  python examples/expr_compiler.py
"""

import repro
from repro.backend import generate
from repro.lang.prims import make_pair
from repro.stdlib import stdlib_source

INTERPRETER = stdlib_source(("Lists",)) + """
module Rpn where
import Lists

exec prog env stack =
  if null prog then head stack
  else if fst (head prog) == 0 then exec (tail prog) env (snd (head prog) : stack)
  else if fst (head prog) == 1 then exec (tail prog) env (nth env (snd (head prog)) : stack)
  else if fst (head prog) == 2 then exec (tail prog) env ((head (tail stack) + head stack) : tail (tail stack))
  else exec (tail prog) env ((head (tail stack) * head stack) : tail (tail stack))

run prog env = exec prog env nil
"""


def push(n):
    return make_pair(0, n)


def var(i):
    return make_pair(1, i)


ADD = make_pair(2, 0)
MUL = make_pair(3, 0)


def main():
    gp = repro.compile_genexts(INTERPRETER)

    # (x + 1) * (y + 2), i.e.  x 1 + y 2 + *
    rpn = (var(0), push(1), ADD, var(1), push(2), ADD, MUL)
    print("== Compiling  (x + 1) * (y + 2)  from RPN ==")
    result = repro.specialise(gp, "run", {"prog": rpn})
    print(repro.pretty_program(result.program))
    for env in [(0, 0), (3, 4), (9, 1)]:
        x, y = env
        print(
            "env=%s -> %s (expected %s)"
            % (env, result.run(env), (x + 1) * (y + 2))
        )
    print("stats:", result.stats)
    print()

    print("== Constant folding: all-static programs become literals ==")
    const = repro.specialise(
        gp, "run", {"prog": (push(6), push(7), MUL), "env": ()}
    )
    print(repro.pretty_program(const.program))
    print()

    print("== Run-time code generation: straight to a Python callable ==")
    fn = generate(gp, "run", {"prog": (var(0), var(0), MUL, push(1), ADD)})
    print("# compiled Python:")
    print(fn.python_source.split("# module")[1].strip())
    print("fn([6]) =", fn((6,)), "(expected 37)")


if __name__ == "__main__":
    main()
