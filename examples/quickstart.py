#!/usr/bin/env python3
"""Quickstart: specialising the paper's ``power`` function.

Walks the whole pipeline on one module:

1. parse and link;
2. polymorphic binding-time analysis (the principal binding-time type
   of ``power`` is the paper's ``forall t,u. t -> u -> t|u``);
3. the annotated definition (Fig. 2);
4. the generating extension the cogen emits (Fig. 3);
5. specialisation in both directions: static exponent (unfolds to
   ``x * (x * x)``) and static base (a polyvariant residual loop).

Run:  python examples/quickstart.py
"""

import repro
from repro.anno.pretty import pretty_adef
from repro.bt.analysis import analyse_program
from repro.genext.cogen import cogen_program

SOURCE = """\
module Power where

power n x = if n == 1 then x else x * power (n - 1) x
"""


def main():
    print("== Source ==")
    print(SOURCE)

    linked = repro.load_program(SOURCE)
    analysis = repro.analyse_program(linked)

    print("== Principal binding-time scheme ==")
    print("power :", analysis.schemes["power"])
    print()

    print("== Annotated definition (paper Fig. 2) ==")
    print(pretty_adef(analysis.annotated.module("Power").find("power")))
    print()

    print("== Generating extension (paper Fig. 3) ==")
    genexts = cogen_program(analysis)
    print(genexts[0].source)

    gp = repro.link_genexts(genexts)

    print("== Specialise with n = 3 static (power {S D}) ==")
    result = repro.specialise(gp, "power", {"n": 3})
    print(repro.pretty_program(result.program))
    print("residual power(2) =", result.run(2))
    print()

    print("== Specialise with x = 2 static (power {D S}) ==")
    result = repro.specialise(gp, "power", {"x": 2})
    print(repro.pretty_program(result.program))
    print("residual power(10) =", result.run(10))
    print("stats:", result.stats)


if __name__ == "__main__":
    main()
