#!/usr/bin/env python3
"""The library-vendor workflow (Secs. 4 and 6).

A list-processing library is prepared for specialisation *once and for
all*: the vendor analyses it (writing a binding-time interface file) and
runs the cogen (writing a generating-extension module).  A client
program is later specialised by linking only the *generated* artefacts —
the library's source never has to be shown to the client-side
specialiser, which is the paper's answer to specialising commercial
libraries.

Run:  python examples/library_specialisation.py
"""

import os
import tempfile

import repro
from repro.bt.interface import InterfaceManager, read_interface
from repro.genext.cogen import cogen_program
from repro.genext.link import load_genext_dir, write_genexts

LIBRARY = """\
module Lists where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)
filter p xs = if null xs then nil else if p @ head xs then head xs : filter p (tail xs) else filter p (tail xs)
foldr f z xs = if null xs then z else f @ head xs @ foldr f z (tail xs)
append xs ys = if null xs then ys else head xs : append (tail xs) ys
length xs = if null xs then 0 else 1 + length (tail xs)
take n xs = if n == 0 then nil else if null xs then nil else head xs : take (n - 1) (tail xs)
drop n xs = if n == 0 then xs else if null xs then nil else drop (n - 1) (tail xs)
replicate n x = if n == 0 then nil else x : replicate (n - 1) x
sum xs = if null xs then 0 else head xs + sum (tail xs)
iota n = if n == 0 then nil else append (iota (n - 1)) [n]
"""

CLIENT = """\
module Client where
import Lists

scale k xs = map (\\x -> k * x) xs
sumsq xs = sum (map (\\x -> x * x) xs)
firstk k xs = take k xs
"""


def main():
    workspace = tempfile.mkdtemp(prefix="library-example-")
    src_dir = os.path.join(workspace, "src")
    dist_dir = os.path.join(workspace, "dist")
    os.makedirs(src_dir)

    # ------------------------------------------------------------------
    # Vendor side: ship interface + generating extension, not sources.
    # ------------------------------------------------------------------
    with open(os.path.join(src_dir, "Lists.mod"), "w") as f:
        f.write(LIBRARY)
    vendor_program = repro.load_program_dir(src_dir)
    manager = InterfaceManager(src_dir)
    schemes, analysed = manager.analyse(vendor_program)
    print("Vendor analysed modules:", ", ".join(analysed))
    print("Sample schemes:")
    for name in ("map", "take", "sum"):
        print("  %s : %s" % (name, schemes[name]))
    analysis = repro.analyse_program(vendor_program)
    write_genexts(cogen_program(analysis), dist_dir)
    print("Shipped artefacts:", sorted(os.listdir(dist_dir)))
    print()

    # ------------------------------------------------------------------
    # Client side: the client module is analysed against the interface
    # file alone, cogen'd, and linked with the *generated* library.
    # ------------------------------------------------------------------
    with open(os.path.join(src_dir, "Client.mod"), "w") as f:
        f.write(CLIENT)
    client_program = repro.load_program_dir(src_dir)
    client_analysis = repro.analyse_program(client_program)
    client_genexts = [
        m for m in cogen_program(client_analysis) if m.name == "Client"
    ]
    write_genexts(client_genexts, dist_dir)
    gp = load_genext_dir(dist_dir)  # no .mod sources involved from here on

    print("== scale with k = 10 static ==")
    result = repro.specialise(gp, "scale", {"k": 10})
    print(repro.pretty_program(result.program))
    print("scale([1,2,3]) =", result.run((1, 2, 3)))
    print()

    print("== firstk with k = 2 static ==")
    result = repro.specialise(gp, "firstk", {"k": 2})
    print(repro.pretty_program(result.program))
    print("firstk([7,8,9]) =", result.run((7, 8, 9)))
    print()

    print("== sumsq with xs = [1,2,3,4] static (computed away) ==")
    result = repro.specialise(gp, "sumsq", {"xs": (1, 2, 3, 4)})
    print(repro.pretty_program(result.program))
    print("sumsq() =", result.run())


if __name__ == "__main__":
    main()
