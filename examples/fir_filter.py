#!/usr/bin/env python3
"""Specialising a signal-processing library to a fixed filter kernel.

The generality/efficiency tension of the paper's introduction, on a
classic workload: a general FIR (finite-impulse-response) filter works
for any kernel, but a production system runs one fixed kernel over long
signals.  Specialising the general library to the kernel unrolls the
inner dot product completely — kernel loads, loop tests, and index
arithmetic all vanish; multiplications by the kernel's coefficients are
left with their constants inlined.

Run:  python examples/fir_filter.py
"""

import repro
from repro.backend import generate
from repro.interp import Interpreter
from repro.modsys.program import load_program
from repro.stdlib import stdlib_source

SOURCE = stdlib_source(("Lists",)) + """
module Fir where
import Lists

dot ks xs = if null ks then 0 else head ks * head xs + dot (tail ks) (tail xs)
window n xs = take n xs
fir ks xs = if length xs < length ks then nil else dot ks (window (length ks) xs) : fir ks (tail xs)
"""


def main():
    gp = repro.compile_genexts(SOURCE)
    linked = load_program(SOURCE)

    kernel = (1, 2, 1)  # a small smoothing kernel
    print("== Specialising fir to kernel %s ==" % (kernel,))
    result = repro.specialise(gp, "fir", {"ks": kernel})
    print(repro.pretty_program(result.program))

    signal = (1, 2, 3, 4, 5, 6)
    general = Interpreter(linked, fuel=10_000_000)
    expected = general.call("fir", [kernel, signal])
    specialised = Interpreter(result.linked)
    got = specialised.call(result.entry, [signal])
    print("fir %s %s = %s" % (kernel, signal, got))
    assert got == expected
    print(
        "evaluation steps: general %d, specialised %d (%.1fx fewer)"
        % (general.steps, specialised.steps, general.steps / specialised.steps)
    )
    print()

    print("== And as a Python callable via run-time code generation ==")
    fn = generate(gp, "fir", {"ks": (3, 1)})
    print("fn((10, 20, 30)) =", fn((10, 20, 30)))


if __name__ == "__main__":
    main()
