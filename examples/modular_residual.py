#!/usr/bin/env python3
"""Residual module structure (Sec. 5 of the paper, end to end).

Three demonstrations:

1. The paper's own Power/Twice/Main program: the residual program gets a
   *different* module structure than the source, with a combination
   module ``PowerTwice`` holding the specialisation of ``twice`` to the
   power-closure.
2. The higher-order pitfall: ``map`` from module A specialised to a
   closure over ``g`` from module B must not be placed in A (module A
   cannot import B — that would be cyclic); it lands with ``g``.
3. Sharing through combinations: two sibling modules that specialise
   ``map`` to the *same* closure get one shared residual function in an
   ``A ∩ C`` combination module that both import.

Run:  python examples/modular_residual.py
"""

import repro
from repro.bench.generators import power_twice_main_source
from repro.api import SpecOptions


def show(result):
    print(repro.pretty_program(result.program))
    print(
        "residual modules:",
        ", ".join(sorted(m.name for m in result.program.modules)),
    )
    print()


def main():
    print("=" * 66)
    print("1. The paper's Power/Twice/Main example")
    print("=" * 66)
    gp = repro.compile_genexts(
        power_twice_main_source(),
        # as hand-annotated in Sec. 5
        SpecOptions(force_residual={"power", "twice", "main"}),
    )
    result = repro.specialise(gp, "main", {})
    show(result)
    print("main(2) = 2^9 =", result.run(2))
    print()

    print("=" * 66)
    print("2. map specialised to a closure over g: placed with g, not map")
    print("=" * 66)
    gp = repro.compile_genexts("""
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)

module B where
import A

g x = x + 1
h zs = map (\\x -> g x) zs
""", SpecOptions(force_residual={"g", "h"}))
    result = repro.specialise(gp, "h", {})
    show(result)
    print("h([1,2,3]) =", result.run((1, 2, 3)))
    print()

    print("=" * 66)
    print("3. A shared specialisation lands in a combination module A∩C")
    print("=" * 66)
    gp = repro.compile_genexts("""
module A where

map f xs = if null xs then nil else (f @ head xs) : map f (tail xs)

module C where

g x = x + 1
gclo = \\x -> g x

module B where
import A
import C

hb zs = map gclo zs

module Dm where
import A
import C

hd zs = map gclo (tail zs)

module Main where
import B
import Dm

append xs ys = if null xs then ys else head xs : append (tail xs) ys
main zs = append (hb zs) (hd zs)
""", SpecOptions(force_residual={"g", "hb", "hd", "main", "append"}))
    result = repro.specialise(gp, "main", {})
    show(result)
    print("main([5,6]) =", result.run((5, 6)))
    ac = next(m for m in result.program.modules if set("AC") <= set(m.name))
    print(
        "the combination module %r holds %d shared specialisation(s)"
        % (ac.name, len(ac.defs))
    )


if __name__ == "__main__":
    main()
